"""Query surfaces over the serving cache.

Two front doors onto one read path:

* :class:`ServingFrontend` — a thin asyncio TCP server speaking a
  line-oriented protocol (``GET <user> [k]`` -> one JSON line), the shape
  a production edge service would wrap around the cache.  The cache read
  itself is lock-free and microseconds-scale, so the server never hands
  it off to an executor — the event loop *is* the read thread, and the
  writer never blocks it.
* :class:`QueryLoadGenerator` — the simulated counterpart: point queries
  scheduled on the topology's virtual clock (zipf-skewed users, fixed
  QPS), timing each lookup in *wall-clock* microseconds so the mixed
  read/write runs report real read latency under live ingest, not
  simulated latency.

Both consume anything with the ``get_recommendations(user, k)`` /
``hit_rate`` surface — a single :class:`~repro.serving.cache.ServingCache`
or the sharded wrapper.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import TYPE_CHECKING

from repro.gen.zipf import ZipfSampler
from repro.util.rng import make_rng
from repro.util.validation import require_non_negative, require_positive

if TYPE_CHECKING:
    from repro.serving.cache import ServedRecommendation, ServingCache
    from repro.sim.des import DiscreteEventSimulator
    from repro.sim.metrics import LatencyBreakdown

__all__ = ["QueryLoadGenerator", "ServingFrontend"]

#: Latency-breakdown stage the query generator records reads under.
READ_STAGE = "serving:read"


class ServingFrontend:
    """Asyncio TCP front-end answering point queries off the serving cache.

    Protocol (newline-delimited, UTF-8):

    * ``GET <user> [k]`` — one JSON reply line
      ``{"user": ..., "recommendations": [[candidate, score, created_at],
      ...]}``;
    * ``STATS`` — one JSON line of cache gauges (users cached, hit rate,
      bytes per user);
    * ``QUIT`` — closes the connection;
    * anything else — ``{"error": ...}`` and the connection stays open.

    The server holds no per-user state of its own; every ``GET`` is one
    lock-free seqlock read against the live cache, safe while a writer
    (the delivery tap) keeps merging flush windows in.
    """

    def __init__(self, cache: "ServingCache") -> None:
        self.cache = cache
        self.queries_served = 0
        self._server: asyncio.AbstractServer | None = None

    @classmethod
    def attach(cls, specs) -> "ServingFrontend":
        """A frontend over worker-resident shard caches, by spec alone.

        *specs* is the ``ShardedDeliveryPipeline.serving.specs`` list (or
        any iterable of :class:`~repro.serving.cache.ServingArenaSpec`) —
        enough to serve reads zero-copy from another process's arenas
        without holding the pipeline or topology object at all, which is
        how a separate edge-server process would mount the cache.
        """
        from repro.serving.cache import ShardedServingCacheReader

        return cls(ShardedServingCacheReader.attach(specs))

    async def get_recommendations(
        self, user: int, k: int | None = None
    ) -> "list[ServedRecommendation]":
        """The async face of the cache read (used by in-process callers)."""
        self.queries_served += 1
        return self.cache.get_recommendations(user, k)

    def stats(self) -> dict[str, float]:
        """Cache gauges, JSON-ready (the ``STATS`` verb and the monitor)."""
        cache = self.cache
        data = {
            "users_cached": float(cache.users_cached),
            "hit_rate": cache.hit_rate,
            "bytes_per_user": cache.bytes_per_user(),
            "queries_served": float(self.queries_served),
        }
        shard_stats = getattr(cache, "shard_stats", None)
        if callable(shard_stats):  # sharded surface: per-shard visibility
            data["shards"] = float(len(shard_stats()))
        return data

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one client until EOF / ``QUIT``."""
        try:
            while True:
                line = await reader.readline()
                if not line:
                    return
                reply = self._dispatch(line.decode("utf-8", "replace").strip())
                if reply is None:
                    return
                writer.write(reply.encode("utf-8") + b"\n")
                await writer.drain()
        except asyncio.CancelledError:
            pass  # server stopping with this client mid-read: close quietly
        except ConnectionError:
            pass  # client vanished mid-exchange
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionError, OSError):
                # Loop teardown may cancel us mid-close, and the client
                # may already be gone — either way the socket is closed
                # and there is nothing left to clean up.
                pass

    def _dispatch(self, line: str) -> str | None:
        """One protocol line -> one JSON reply line (None closes)."""
        parts = line.split()
        verb = parts[0].upper() if parts else ""
        if verb == "QUIT":
            return None
        if verb == "STATS":
            return json.dumps(self.stats())
        if verb == "GET" and len(parts) in (2, 3):
            try:
                user = int(parts[1])
                k = int(parts[2]) if len(parts) == 3 else None
            except ValueError:
                return json.dumps({"error": f"bad GET arguments: {line!r}"})
            self.queries_served += 1
            served = self.cache.get_recommendations(user, k)
            return json.dumps(
                {
                    "user": user,
                    "recommendations": [
                        [rec.candidate, rec.score, rec.created_at]
                        for rec in served
                    ],
                }
            )
        return json.dumps({"error": f"unknown command: {line!r}"})

    async def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> tuple[str, int]:
        """Bind and start serving; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self.handle_connection, host, port
        )
        bound = self._server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def stop(self) -> None:
        """Stop accepting and close the listening socket (idempotent)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None


class QueryLoadGenerator:
    """Zipf point-query load on the topology's virtual clock.

    Schedules ``qps`` queries per virtual second — users drawn from the
    same zipf popularity skew the stream generator uses (hot users are
    read most, exactly the production access pattern) — against the live
    serving cache, while ingest runs in the same simulation.  Each read
    is timed in wall-clock seconds into the ``serving:read`` breakdown
    stage, so the run's report shows real read latency under ingest.

    Queries are scheduled only up to a fixed *horizon* (not re-armed
    while the simulator has work): a self-rescheduling query event and
    the adaptive controller's self-rescheduling tick would otherwise keep
    each other alive forever.

    Args:
        sim: the topology's simulator.
        cache: anything with ``get_recommendations(user, k)``.
        num_users: user-id space to draw queries from.
        qps: point queries per virtual second.
        breakdown: latency sink for the ``serving:read`` stage.
        k: entries requested per query.
        exponent: zipf skew over user popularity ranks.
        seed: RNG seed (stream label ``"query"``).
    """

    def __init__(
        self,
        sim: "DiscreteEventSimulator",
        cache: "ServingCache",
        num_users: int,
        qps: float,
        breakdown: "LatencyBreakdown",
        k: int | None = None,
        exponent: float = 1.1,
        seed: int = 0,
    ) -> None:
        require_positive(num_users, "num_users")
        require_positive(qps, "qps")
        require_non_negative(exponent, "exponent")
        self._sim = sim
        self._cache = cache
        self._interval = 1.0 / qps
        self._k = k
        self._sampler = ZipfSampler(num_users, exponent, make_rng(seed, "query"))
        self._breakdown = breakdown
        self.queries_issued = 0
        self.queries_hit = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of issued queries that returned a non-empty row."""
        if self.queries_issued == 0:
            return 0.0
        return self.queries_hit / self.queries_issued

    def schedule_until(self, horizon: float) -> int:
        """Schedule the full query timeline up to virtual time *horizon*.

        Returns the number of queries scheduled.  The timeline is fixed
        up front (start-of-run), which keeps the DES event count exact
        and sidesteps the mutual keep-alive hazard described above.
        """
        now = self._sim.clock.now()
        count = 0
        t = now + self._interval
        while t <= horizon:
            self._sim.schedule_at(t, self._issue_one)
            t += self._interval
            count += 1
        return count

    def _issue_one(self) -> None:
        user = self._sampler.sample()
        started = time.perf_counter()
        served = self._cache.get_recommendations(user, self._k)
        self._breakdown.record(READ_STAGE, time.perf_counter() - started)
        self.queries_issued += 1
        if served:
            self.queries_hit += 1
