"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``figure1`` — replay the paper's worked example;
* ``generate-graph`` — write a synthetic follow-graph snapshot (.npz);
* ``generate-stream`` — write a temporally-correlated event stream (.csv);
* ``run`` — replay a stream file through an engine built from a snapshot
  file, printing detection statistics and top candidates;
* ``simulate`` — run the end-to-end queue topology and print the latency
  breakdown (the paper's 7 s / 15 s experiment); ``--query-qps`` adds
  pull-side point-query load against a live serving cache; ``--wal-dir``
  enables the durable state tier (write-ahead event log plus, with
  ``--snapshot-interval``, incremental snapshots);
* ``recover`` — rebuild a crashed ``simulate --wal-dir`` deployment from
  its durability root (latest snapshot + WAL tail replay) and optionally
  verify the delivered multiset against an uninterrupted reference run;
* ``serve`` — materialize a stream into the serving cache and answer
  ``GET <user>`` point queries over a TCP front-end;
* ``explain`` — compile a catalog motif (or a motif text file) and print
  its query plan;
* ``analyze`` — structural fingerprint of a snapshot file.

Every command is deterministic given its ``--seed``.
"""

from __future__ import annotations

import argparse
import asyncio
import csv
import sys
from collections import Counter as CollectionsCounter
from pathlib import Path

from repro.analysis import analyze_structure
from repro.cluster import TRANSPORTS, Cluster, ClusterConfig
from repro.core import ActionType, DetectionParams, EdgeEvent, MotifEngine
from repro.delivery import DedupFilter, DeliveryPipeline, ShardedDeliveryPipeline
from repro.gen import (
    BurstSpec,
    StreamConfig,
    TwitterGraphConfig,
    generate_event_stream,
    generate_follow_graph,
    generate_follow_graph_chunked,
)
from repro.serving import (
    ServingCacheConfig,
    ServingFrontend,
    ShardedServingCache,
)
from repro.graph import (
    D_BACKENDS,
    S_BACKENDS,
    DynamicEdgeIndex,
    GraphSnapshot,
    build_follower_snapshot,
)
from repro.motif import MOTIF_CATALOG, DeclarativeDetector, parse_motif
from repro.ops import ControllerConfig, derive_promote_threshold
from repro.durability import DurabilityManager, prepare_root
from repro.durability import recover as durability_recover
from repro.sim.latency import (
    FixedDelay,
    LogNormalDelay,
    PRODUCTION_HOP_SIGMA,
)
from repro.streaming import StreamingTopology
from repro.util.rng import make_rng
from repro.util.validation import require_positive


def build_arg_parser() -> argparse.ArgumentParser:
    """The full CLI argument schema."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Online motif detection (Gupta et al., VLDB 2014) — reproduction CLI",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("figure1", help="replay the paper's Figure 1 example")

    gen_graph = commands.add_parser("generate-graph", help="write a synthetic follow graph")
    gen_graph.add_argument("output", type=Path, help="output .npz path")
    gen_graph.add_argument("--users", type=int, default=10_000)
    gen_graph.add_argument("--mean-followings", type=float, default=20.0)
    gen_graph.add_argument("--seed", type=int, default=0)
    gen_graph.add_argument(
        "--chunked",
        action="store_true",
        help="vectorized chunked generation (no boxed edge list) — the "
        "path that scales to multi-million-user graphs; statistically "
        "the same family as the default path but a different RNG stream",
    )

    gen_stream = commands.add_parser("generate-stream", help="write an event stream CSV")
    gen_stream.add_argument("output", type=Path, help="output .csv path")
    gen_stream.add_argument("--users", type=int, default=10_000)
    gen_stream.add_argument("--duration", type=float, default=3_600.0)
    gen_stream.add_argument("--rate", type=float, default=10.0)
    gen_stream.add_argument("--bursts", type=int, default=2)
    gen_stream.add_argument("--burst-actors", type=int, default=100)
    gen_stream.add_argument("--seed", type=int, default=0)

    run = commands.add_parser("run", help="replay a stream through the engine")
    run.add_argument("graph", type=Path, help="snapshot .npz from generate-graph")
    run.add_argument("stream", type=Path, help="event .csv from generate-stream")
    run.add_argument("--k", type=int, default=3)
    run.add_argument("--tau", type=float, default=1_800.0)
    run.add_argument("--top", type=int, default=5, help="top candidates to print")
    run.add_argument(
        "--batch-size",
        type=int,
        default=1,
        help="columnar micro-batch size for ingestion (1 = per-event)",
    )
    _add_backend_args(run)

    simulate = commands.add_parser("simulate", help="end-to-end latency simulation")
    simulate.add_argument("graph", type=Path)
    simulate.add_argument("stream", type=Path)
    simulate.add_argument("--k", type=int, default=3)
    simulate.add_argument("--tau", type=float, default=1_800.0)
    simulate.add_argument("--partitions", type=int, default=4)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument(
        "--batch-size",
        type=int,
        default=1,
        help="detection-consumer micro-batch size (1 = per-event)",
    )
    simulate.add_argument(
        "--max-batch-wait",
        type=float,
        default=0.05,
        help="micro-batch flush deadline in virtual seconds",
    )
    simulate.add_argument(
        "--delivery-batch-size",
        type=int,
        default=1,
        help="coalesce candidate batches until this many raw candidates "
        "are pending before one funnel dispatch (1 = per-batch)",
    )
    simulate.add_argument(
        "--delivery-max-wait",
        type=float,
        default=0.05,
        help="delivery coalescing window in virtual seconds (time spent "
        "waiting is reported as the path:delivery-batching stage)",
    )
    simulate.add_argument(
        "--transport",
        choices=TRANSPORTS,
        default="inprocess",
        help="broker-to-partition transport: inprocess = direct calls "
        "with simulated latency (default), process = one multiprocessing "
        "worker per partition (real parallelism), shm = the same workers "
        "fed over zero-copy shared-memory ring buffers (lowest wire "
        "overhead; requires /dev/shm)",
    )
    simulate.add_argument(
        "--delivery-shards",
        type=int,
        default=1,
        help="shard the delivery funnel by recipient hash onto this many "
        "independent shards (workers under --transport process/shm; 1 = "
        "the single in-process funnel)",
    )
    simulate.add_argument(
        "--ranked",
        action="store_true",
        help="ranked delivery: buffer candidates per recipient over the "
        "coalescing window and release only each user's top-k into the "
        "funnel",
    )
    simulate.add_argument(
        "--ranked-k",
        type=int,
        default=2,
        help="per-user candidates released per coalescing window under "
        "--ranked",
    )
    simulate.add_argument(
        "--adaptive",
        action="store_true",
        help="enable the adaptive control plane: a controller ticking in "
        "virtual time retunes --batch-size/--max-batch-wait and the "
        "delivery window from the live backlog signal (the static knob "
        "values above become its starting point only), derives the ring "
        "promote threshold from recorded bench crossovers, and escalates "
        "to admission shedding past --slo-p99",
    )
    simulate.add_argument(
        "--slo-p99",
        type=float,
        default=None,
        help="end-to-end p99 SLO in virtual seconds for --adaptive; past "
        "it (with the escalation ladder saturated) the controller sheds "
        "via admission control; omit to never shed",
    )
    simulate.add_argument(
        "--controller-interval",
        type=float,
        default=0.5,
        help="virtual seconds between adaptive-controller ticks",
    )
    simulate.add_argument(
        "--query-qps",
        type=float,
        default=None,
        help="mixed workload: serve this many zipf point queries per "
        "virtual second off a live serving cache (fed by the delivery "
        "flush tap) while the stream ingests; read latency is reported "
        "from the serving:read stage",
    )
    simulate.add_argument(
        "--serving-shards",
        type=int,
        default=1,
        help="serving-cache shards (splitmix64 by user, the delivery "
        "keying); only meaningful with --query-qps (ignored under "
        "--serving-mode worker, where serving shards are the delivery "
        "shards)",
    )
    simulate.add_argument(
        "--serving-mode",
        choices=("parent", "worker"),
        default="parent",
        help="where serving-cache writes happen: parent = the delivery "
        "coalescer's flush tap merges in this process; worker = each "
        "delivery shard worker merges its own slice into a shared-memory "
        "arena where the funnel runs, and this process reads the arenas "
        "zero-copy (requires --query-qps; serving shards = delivery "
        "shards)",
    )
    simulate.add_argument(
        "--serving-ttl",
        type=float,
        default=None,
        help="serving-cache TTL in virtual seconds: users whose newest "
        "entry is older than this are evicted before the cache grows "
        "(omit = keep everything)",
    )
    simulate.add_argument(
        "--wal-dir",
        type=Path,
        default=None,
        help="enable the durable state tier: write the static graph + "
        "run config into this durability root and append every ingested "
        "event batch to a segmented write-ahead log under it (see the "
        "recover command)",
    )
    simulate.add_argument(
        "--snapshot-interval",
        type=float,
        default=None,
        help="with --wal-dir, take an incremental state snapshot every "
        "this many virtual seconds (at quiescent points); omit for WAL "
        "only",
    )
    simulate.add_argument(
        "--wal-fsync-every",
        type=int,
        default=64,
        help="fsync the WAL every N appended records (the power-loss "
        "exposure window; flushes to the OS are more frequent)",
    )
    simulate.add_argument(
        "--wal-throttle",
        type=float,
        default=0.0,
        help="wall-clock seconds to sleep per WAL append — a crash-"
        "testing aid that widens the window in which a SIGKILL lands "
        "mid-run",
    )
    simulate.add_argument(
        "--no-wal-gc",
        action="store_true",
        help="keep WAL segments that snapshots already cover (needed to "
        "recover --ignore-snapshots from sequence zero)",
    )
    simulate.add_argument(
        "--dump-delivered",
        type=Path,
        default=None,
        help="write every delivered notification as CSV (recipient, "
        "candidate, created_at, delivered_at) — the reference artifact "
        "the recover command verifies against",
    )
    simulate.add_argument(
        "--hop-median",
        type=float,
        default=None,
        help="override the calibrated lognormal queue-hop median "
        "(virtual seconds) for all three hops; 0 = deterministic "
        "zero-delay hops (exact crash-recovery equivalence)",
    )
    simulate.add_argument(
        "--hop-sigma",
        type=float,
        default=None,
        help="override the lognormal queue-hop sigma (with --hop-median)",
    )
    _add_backend_args(simulate)

    recover = commands.add_parser(
        "recover",
        help="rebuild a crashed simulate --wal-dir deployment from its "
        "durability root",
    )
    recover.add_argument(
        "root", type=Path, help="the --wal-dir of the crashed run"
    )
    recover.add_argument(
        "--ignore-snapshots",
        action="store_true",
        help="cold-start: replay the full surviving WAL instead of "
        "warm-starting from the latest snapshot",
    )
    recover.add_argument(
        "--dump-delivered",
        type=Path,
        default=None,
        help="write the recovered delivered ledger as CSV (same schema "
        "as simulate --dump-delivered)",
    )
    recover.add_argument(
        "--verify-prefix",
        type=Path,
        default=None,
        help="delivered CSV from an uninterrupted reference run; checks "
        "that the recovered (recipient, candidate, created_at) multiset "
        "equals the reference restricted to the events the WAL retained "
        "(exit 1 on mismatch; exact under --hop-median 0)",
    )

    serve = commands.add_parser(
        "serve",
        help="materialize a stream into the serving cache, then answer "
        "point queries over a TCP front-end",
    )
    serve.add_argument("graph", type=Path)
    serve.add_argument("stream", type=Path)
    serve.add_argument("--k", type=int, default=3)
    serve.add_argument("--tau", type=float, default=1_800.0)
    serve.add_argument("--partitions", type=int, default=4)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--topk", type=int, default=2, help="materialized entries per user")
    serve.add_argument(
        "--serving-shards",
        type=int,
        default=1,
        help="serving-cache shards (splitmix64 by user)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port to bind (0 = ephemeral, printed once bound)",
    )
    serve.add_argument(
        "--smoke-queries",
        type=int,
        default=None,
        help="self-test mode: issue this many zipf GETs over loopback, "
        "print the stats line, and exit instead of serving forever",
    )

    explain = commands.add_parser("explain", help="print a motif's compiled plan")
    explain.add_argument(
        "motif",
        help=f"catalog name ({', '.join(sorted(MOTIF_CATALOG))}) or a .motif text file",
    )
    explain.add_argument("--k", type=int, default=None)
    explain.add_argument("--tau", type=float, default=None)

    analyze = commands.add_parser("analyze", help="structural fingerprint of a graph")
    analyze.add_argument("graph", type=Path)

    return parser


def _add_backend_args(command: argparse.ArgumentParser) -> None:
    """Storage-backend selectors shared by ``run`` and ``simulate``."""
    command.add_argument(
        "--s-backend",
        choices=S_BACKENDS,
        default="csr",
        help="S storage layout: csr = single int64 arena (default), "
        "packed = one buffer per followed account",
    )
    command.add_argument(
        "--d-backend",
        choices=D_BACKENDS,
        default="ring",
        help="D storage layout: ring = columnar ring buffers for hot "
        "targets (default), list = deques only",
    )


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------

def _cmd_figure1(args: argparse.Namespace, out) -> int:
    follows = [(0, 3), (1, 3), (1, 4), (2, 4)]
    snapshot = GraphSnapshot.from_edges(follows, num_nodes=8)
    engine = MotifEngine.from_snapshot(snapshot, DetectionParams(k=2, tau=600.0))
    engine.process(EdgeEvent(0.0, 3, 6))
    recs = engine.process(EdgeEvent(10.0, 4, 6))
    print("B1->C2: no recommendation (top half incomplete)", file=out)
    for rec in recs:
        print(
            f"B2->C2: recommend C2(id {rec.candidate}) to A2(id {rec.recipient}) "
            f"via B's {list(rec.via)}",
            file=out,
        )
    return 0


def _cmd_generate_graph(args: argparse.Namespace, out) -> int:
    config = TwitterGraphConfig(
        num_users=args.users,
        mean_followings=args.mean_followings,
        seed=args.seed,
    )
    if args.chunked:
        snapshot = generate_follow_graph_chunked(config)
    else:
        snapshot = generate_follow_graph(config)
    snapshot.save(args.output)
    print(
        f"wrote {snapshot.num_users} users / {snapshot.num_edges} edges "
        f"to {args.output}",
        file=out,
    )
    return 0


def _cmd_generate_stream(args: argparse.Namespace, out) -> int:
    bursts = tuple(
        BurstSpec(
            target=args.users - 1 - i,
            start=args.duration * (i + 0.5) / (args.bursts + 1),
            duration=args.duration / (args.bursts + 2),
            num_actors=args.burst_actors,
        )
        for i in range(args.bursts)
    )
    events = generate_event_stream(
        StreamConfig(
            num_users=args.users,
            duration=args.duration,
            background_rate=args.rate,
            bursts=bursts,
            seed=args.seed,
        )
    )
    with open(args.output, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["created_at", "actor", "target", "action"])
        for event in events:
            writer.writerow(
                [f"{event.created_at:.6f}", event.actor, event.target, event.action.value]
            )
    print(f"wrote {len(events)} events to {args.output}", file=out)
    return 0


def _load_stream(path: Path) -> list[EdgeEvent]:
    events: list[EdgeEvent] = []
    with open(path, newline="") as handle:
        for row in csv.DictReader(handle):
            events.append(
                EdgeEvent(
                    float(row["created_at"]),
                    int(row["actor"]),
                    int(row["target"]),
                    ActionType(row["action"]),
                )
            )
    return events


def _cmd_run(args: argparse.Namespace, out) -> int:
    snapshot = GraphSnapshot.load(args.graph)
    events = _load_stream(args.stream)
    engine = MotifEngine.from_snapshot(
        snapshot,
        DetectionParams(k=args.k, tau=args.tau),
        s_backend=args.s_backend,
        d_backend=args.d_backend,
    )
    recs = engine.process_stream(events, batch_size=args.batch_size)
    latency = engine.stats.query_latency.snapshot()
    print(f"events processed : {engine.stats.events_processed}", file=out)
    print(f"raw candidates   : {len(recs)}", file=out)
    print(
        f"query latency    : p50={latency.get('p50', 0) * 1e3:.3f}ms "
        f"p99={latency.get('p99', 0) * 1e3:.3f}ms",
        file=out,
    )
    top = CollectionsCounter(rec.candidate for rec in recs).most_common(args.top)
    for candidate, count in top:
        print(f"  candidate {candidate}: {count} raw recommendations", file=out)
    return 0


def _delivery_shard_pipeline(_shard: int) -> DeliveryPipeline:
    """One delivery shard's funnel for ``simulate --delivery-shards``."""
    return DeliveryPipeline(filters=[DedupFilter()])


def _write_delivered(path: Path, rows) -> None:
    """Delivered-ledger CSV; ``repr`` floats round-trip bit-exactly."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["recipient", "candidate", "created_at", "delivered_at"])
        for recipient, candidate, created_at, delivered_at in rows:
            writer.writerow(
                [recipient, candidate, repr(created_at), repr(delivered_at)]
            )


def _hop_model_overrides(args: argparse.Namespace):
    """Explicit hop models when --hop-median is given (None = calibrated)."""
    if args.hop_median is None:
        return None
    names = ("firehose", "fanout", "push")
    if args.hop_median <= 0:
        # Deterministic zero-delay hops: the DES delivers ties FIFO, so
        # the whole topology becomes order-deterministic — the regime in
        # which crash recovery reproduces delivery bit for bit.
        return {name: FixedDelay(0.0) for name in names}
    sigma = args.hop_sigma if args.hop_sigma is not None else PRODUCTION_HOP_SIGMA
    return {
        name: LogNormalDelay(
            args.hop_median, sigma, make_rng(args.seed, "hop", name)
        )
        for name in names
    }


def _cmd_simulate(args: argparse.Namespace, out) -> int:
    snapshot = GraphSnapshot.load(args.graph)
    events = _load_stream(args.stream)
    promote_threshold = None
    if args.adaptive:
        # Deployment-time derivation: place the ring promotion point at
        # the recorded list/ring cost crossover when the bench trajectory
        # is available (falls back to the module default otherwise).
        promote_threshold = derive_promote_threshold()
    cluster = Cluster.build(
        snapshot,
        DetectionParams(k=args.k, tau=args.tau),
        ClusterConfig(
            num_partitions=args.partitions,
            s_backend=args.s_backend,
            d_backend=args.d_backend,
            transport=args.transport,
            promote_threshold=promote_threshold,
        ),
    )
    require_positive(args.delivery_shards, "--delivery-shards")
    serving_k = args.ranked_k if args.ranked else 2
    if args.serving_ttl is not None:
        require_positive(args.serving_ttl, "--serving-ttl")
    if args.serving_mode == "worker" and args.query_qps is None:
        print(
            "error: --serving-mode worker requires --query-qps",
            file=sys.stderr,
        )
        cluster.close()
        return 2
    if args.serving_mode == "worker":
        # The shard workers own the cache writers: always go through the
        # sharded pipeline (even at 1 shard) so the arenas, reader, and
        # reclamation sweep exist.
        delivery = ShardedDeliveryPipeline(
            args.delivery_shards,
            pipeline_factory=_delivery_shard_pipeline,
            transport=args.transport,
            serving=ServingCacheConfig(k=serving_k, ttl=args.serving_ttl),
        )
    elif args.delivery_shards > 1:
        delivery = ShardedDeliveryPipeline(
            args.delivery_shards,
            pipeline_factory=_delivery_shard_pipeline,
            transport=args.transport,
        )
    else:
        delivery = _delivery_shard_pipeline(0)
    controller_config = None
    if args.adaptive:
        controller_config = ControllerConfig(
            interval=args.controller_interval,
            slo_p99=args.slo_p99,
        )
    elif args.slo_p99 is not None:
        print("error: --slo-p99 requires --adaptive", file=sys.stderr)
        cluster.close()
        return 2
    serving = None
    if args.query_qps is not None:
        require_positive(args.query_qps, "--query-qps")
        if args.serving_mode == "worker":
            serving = delivery.serving  # the attach-by-spec read surface
        else:
            serving = ShardedServingCache(
                num_shards=args.serving_shards,
                k=serving_k,
                ttl=args.serving_ttl,
            )
    durability = None
    if args.snapshot_interval is not None and args.wal_dir is None:
        print("error: --snapshot-interval requires --wal-dir", file=sys.stderr)
        cluster.close()
        return 2
    if args.wal_dir is not None:
        root = prepare_root(
            args.wal_dir,
            snapshot,
            {
                "k": args.k,
                "tau": args.tau,
                "num_partitions": args.partitions,
                "s_backend": args.s_backend,
                "d_backend": args.d_backend,
                "transport": args.transport,
                "batch_size": args.batch_size,
                "seed": args.seed,
                # Recovery rebuilds the serving cache with this shape —
                # worker mode shards by delivery shard, parent mode by
                # --serving-shards.
                "serving_shards": (
                    args.delivery_shards
                    if args.serving_mode == "worker"
                    else args.serving_shards
                ),
                "serving_k": serving_k,
            },
        )
        durability = DurabilityManager(
            root,
            fsync_every=args.wal_fsync_every,
            throttle_seconds=args.wal_throttle,
            gc_segments=not args.no_wal_gc,
        )
    topology = StreamingTopology(
        cluster,
        delivery=delivery,
        hop_models=_hop_model_overrides(args),
        seed=args.seed,
        batch_size=args.batch_size,
        max_wait=args.max_batch_wait,
        delivery_batch_size=args.delivery_batch_size,
        delivery_max_wait=args.delivery_max_wait,
        ranked_k=args.ranked_k if args.ranked else None,
        controller_config=controller_config,
        serving=serving,
        serving_mode=args.serving_mode,
        query_qps=args.query_qps,
        query_users=snapshot.num_users if serving is not None else None,
        durability=durability,
        snapshot_interval=args.snapshot_interval,
    )
    try:
        result = topology.run(events)
    finally:
        cluster.close()
        if isinstance(delivery, ShardedDeliveryPipeline):
            delivery.close()
        if durability is not None:
            durability.close()
    summary = result.breakdown.summary()
    total = summary.get("total", {})
    print(f"events ingested  : {result.events_ingested}", file=out)
    print(f"notifications    : {len(result.notifications)}", file=out)
    if total.get("count"):
        print(
            f"end-to-end       : median={total['p50']:.1f}s p99={total['p99']:.1f}s "
            "(paper: ~7s / ~15s)",
            file=out,
        )
        print(f"queue share      : {result.queue_share():.1%}", file=out)
    if topology.controller is not None:
        print(f"control plane    : {topology.controller.describe()}", file=out)
        if promote_threshold is not None:
            print(f"promote threshold: {promote_threshold} (derived)", file=out)
    if topology.query_load is not None:
        read = summary.get("serving:read", {})
        print(
            f"serving reads    : {topology.query_load.queries_issued} queries, "
            f"hit rate {topology.query_load.hit_rate:.1%}, "
            f"p50={read.get('p50', 0.0) * 1e6:.0f}us "
            f"p99={read.get('p99', 0.0) * 1e6:.0f}us (wall clock)",
            file=out,
        )
        print(
            f"serving cache    : {serving.users_cached} users materialized, "
            f"{serving.bytes_per_user():.0f} bytes/user",
            file=out,
        )
    if durability is not None:
        stats = durability.stats()
        print(
            f"durability       : {int(stats['wal_records'])} WAL records "
            f"({int(stats['wal_bytes'])} bytes), "
            f"{int(stats['snapshot_count'])} snapshots, "
            f"lag {int(stats['snapshot_lag_records'])} records",
            file=out,
        )
    if args.dump_delivered is not None:
        _write_delivered(
            args.dump_delivered,
            (
                (
                    n.recommendation.recipient,
                    n.recommendation.candidate,
                    n.recommendation.created_at,
                    n.delivered_at,
                )
                for n in result.notifications
            ),
        )
        print(
            f"wrote {len(result.notifications)} delivered rows to "
            f"{args.dump_delivered}",
            file=out,
        )
    return 0


def _cmd_recover(args: argparse.Namespace, out) -> int:
    result = durability_recover(
        args.root, use_snapshot=not args.ignore_snapshots
    )
    try:
        origin = result.snapshot_id or "WAL start"
        print(
            f"recovered from   : {origin} "
            f"(WAL seq >= {result.wal_start_seq})",
            file=out,
        )
        print(
            f"replayed         : {result.replayed_records} records / "
            f"{result.replayed_events} events",
            file=out,
        )
        print(f"delivered ledger : {len(result.delivered)} rows", file=out)
        if args.dump_delivered is not None:
            _write_delivered(args.dump_delivered, result.delivered)
            print(
                f"wrote {len(result.delivered)} delivered rows to "
                f"{args.dump_delivered}",
                file=out,
            )
        if args.verify_prefix is not None:
            return _verify_prefix(args.verify_prefix, result, out)
        return 0
    finally:
        result.close()


def _verify_prefix(reference: Path, result, out) -> int:
    """Delivered-multiset equivalence against an uninterrupted run.

    The recovered state covers exactly the events the WAL retained (a
    crash legitimately loses the un-flushed tail), so the reference
    ledger is first restricted to rows created by those events; within
    that prefix the (recipient, candidate, created_at) multisets must
    match exactly.  Timestamps compare as ``repr`` strings — bit-exact,
    no tolerance.
    """
    universe = {repr(float(t)) for t in result.event_timestamps}
    ref: CollectionsCounter = CollectionsCounter()
    dropped = 0
    with open(reference, newline="") as handle:
        for row in csv.DictReader(handle):
            key = (
                int(row["recipient"]),
                int(row["candidate"]),
                row["created_at"],
            )
            if row["created_at"] in universe:
                ref[key] += 1
            else:
                dropped += 1
    got: CollectionsCounter = CollectionsCounter(
        (recipient, candidate, repr(created_at))
        for recipient, candidate, created_at, _delivered_at in result.delivered
    )
    print(
        f"verify           : reference rows in recovered prefix: "
        f"{sum(ref.values())} (beyond the WAL tail: {dropped})",
        file=out,
    )
    if got == ref:
        print("verify           : PASS - delivered multisets equal", file=out)
        return 0
    missing = ref - got
    extra = got - ref
    print(
        f"verify           : FAIL - {sum(missing.values())} missing, "
        f"{sum(extra.values())} unexpected",
        file=sys.stderr,
    )
    for key, count in list(missing.items())[:5]:
        print(f"  missing {count}x {key}", file=sys.stderr)
    for key, count in list(extra.items())[:5]:
        print(f"  unexpected {count}x {key}", file=sys.stderr)
    return 1


def _cmd_serve(args: argparse.Namespace, out) -> int:
    """Materialize a stream into the serving cache, then answer queries.

    The write path is the same ranked topology ``simulate`` runs (the
    serving cache taps the delivery flush); once the stream has been
    folded in, the asyncio front-end answers ``GET <user> [k]`` point
    lookups.  ``--smoke-queries N`` runs a loopback self-test instead of
    serving forever — the CI smoke mode.
    """
    snapshot = GraphSnapshot.load(args.graph)
    events = _load_stream(args.stream)
    require_positive(args.serving_shards, "--serving-shards")
    cache = ShardedServingCache(num_shards=args.serving_shards, k=args.topk)
    cluster = Cluster.build(
        snapshot,
        DetectionParams(k=args.k, tau=args.tau),
        ClusterConfig(num_partitions=args.partitions),
    )
    topology = StreamingTopology(
        cluster,
        delivery=_delivery_shard_pipeline(0),
        seed=args.seed,
        batch_size=16,
        delivery_batch_size=64,
        ranked_k=args.topk,
        serving=cache,
    )
    try:
        topology.run(events)
    finally:
        cluster.close()
    print(
        f"materialized {cache.users_cached} users "
        f"({cache.bytes_per_user():.0f} bytes/user) from {len(events)} events",
        file=out,
    )
    try:
        return asyncio.run(_serve_frontend(cache, snapshot.num_users, args, out))
    except KeyboardInterrupt:
        return 0


async def _serve_frontend(
    cache: ShardedServingCache, num_users: int, args: argparse.Namespace, out
) -> int:
    """Bind the TCP front-end; self-test (``--smoke-queries``) or serve."""
    import json

    frontend = ServingFrontend(cache)
    host, port = await frontend.start(args.host, args.port)
    print(f"serving on {host}:{port}", file=out)
    try:
        if args.smoke_queries is None:
            await asyncio.Event().wait()  # serve until interrupted
            return 0
        from repro.gen.zipf import ZipfSampler
        from repro.util.rng import make_rng

        sampler = ZipfSampler(num_users, 1.1, make_rng(args.seed, "serve-smoke"))
        reader, writer = await asyncio.open_connection(host, port)
        hits = 0
        for _ in range(args.smoke_queries):
            writer.write(f"GET {sampler.sample()}\n".encode())
            await writer.drain()
            reply = json.loads(await reader.readline())
            hits += bool(reply.get("recommendations"))
        writer.write(b"STATS\n")
        await writer.drain()
        stats = json.loads(await reader.readline())
        writer.write(b"QUIT\n")
        await writer.drain()
        writer.close()
        await writer.wait_closed()
        print(
            f"smoke: {args.smoke_queries} loopback queries, {hits} hits, "
            f"server saw {stats['queries_served']:.0f}",
            file=out,
        )
        return 0
    finally:
        await frontend.stop()


def _cmd_explain(args: argparse.Namespace, out) -> int:
    if args.motif in MOTIF_CATALOG:
        kwargs = {}
        if args.k is not None:
            kwargs["k"] = args.k
        if args.tau is not None:
            kwargs["tau"] = args.tau
        spec = MOTIF_CATALOG[args.motif](**kwargs)
    else:
        path = Path(args.motif)
        if not path.exists():
            print(
                f"error: {args.motif!r} is neither a catalog motif "
                f"({', '.join(sorted(MOTIF_CATALOG))}) nor a file",
                file=sys.stderr,
            )
            return 2
        spec = parse_motif(path.read_text())
    print(spec.describe(), file=out)
    print(file=out)
    tau = max(
        (e.within for e in spec.dynamic_edges() if e.within), default=3_600.0
    )
    detector = DeclarativeDetector(
        spec,
        build_follower_snapshot(GraphSnapshot.from_edges([], num_nodes=1)),
        DynamicEdgeIndex(retention=tau),
        collect_statistics=False,
    )
    print(detector.explain(), file=out)
    return 0


def _cmd_analyze(args: argparse.Namespace, out) -> int:
    snapshot = GraphSnapshot.load(args.graph)
    print(analyze_structure(snapshot).describe(), file=out)
    return 0


_COMMANDS = {
    "figure1": _cmd_figure1,
    "generate-graph": _cmd_generate_graph,
    "generate-stream": _cmd_generate_stream,
    "run": _cmd_run,
    "simulate": _cmd_simulate,
    "recover": _cmd_recover,
    "serve": _cmd_serve,
    "explain": _cmd_explain,
    "analyze": _cmd_analyze,
}


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    args = build_arg_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args, out)
    except BrokenPipeError:
        # Output was piped into a consumer that exited early (e.g. head).
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
