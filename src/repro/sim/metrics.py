"""Latency breakdowns and funnel counters for the simulated pipeline."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.util.stats import PercentileTracker, percentile
from repro.util.validation import require


class LatencyBreakdown:
    """Per-stage latency trackers plus the end-to-end total.

    Stages are registered lazily on first use, so the pipeline code simply
    calls ``record("queue:firehose", delay)`` and the breakdown takes shape
    from whatever stages actually ran.

    Alongside the whole-run reservoir, a small bounded window of the most
    recent totals feeds the adaptive controller: each tick *drains* the
    window (:meth:`drain_recent_totals`), so the SLO decision always sees
    only latencies observed since the last tick — stale breach samples
    can never pin the controller in shed mode after the flow recovers.
    """

    #: Upper bound on per-tick totals retained for the recent window.
    RECENT_WINDOW = 4096

    def __init__(self) -> None:
        self.total = PercentileTracker()
        self._stages: dict[str, PercentileTracker] = {}
        self._recent_totals: deque[float] = deque(maxlen=self.RECENT_WINDOW)

    def record(self, stage: str, seconds: float) -> None:
        """Add one observation for *stage*."""
        tracker = self._stages.get(stage)
        if tracker is None:
            tracker = PercentileTracker()
            self._stages[stage] = tracker
        tracker.add(seconds)

    def record_total(self, seconds: float) -> None:
        """Add one end-to-end observation."""
        self.total.add(seconds)
        self._recent_totals.append(seconds)

    def drain_recent_totals(self) -> list[float]:
        """Take (and clear) the end-to-end totals since the last drain."""
        drained = list(self._recent_totals)
        self._recent_totals.clear()
        return drained

    def recent_p99(self) -> float | None:
        """p99 of the totals since the last drain — drains the window.

        Returns ``None`` when nothing was delivered in the window; a
        silent pipeline carries no latency evidence either way.
        """
        drained = self.drain_recent_totals()
        if not drained:
            return None
        return percentile(sorted(drained), 99.0)

    def stages(self) -> list[str]:
        """Registered stage names, insertion-ordered."""
        return list(self._stages)

    def stage(self, name: str) -> PercentileTracker:
        """The tracker for *name* (KeyError if the stage never ran)."""
        return self._stages[name]

    def share_of_total(self, stage: str) -> float:
        """Mean fraction of total latency attributable to *stage*."""
        require(len(self.total) > 0, "no totals recorded")
        total_mean = self.total.stats.mean
        if total_mean == 0:
            return 0.0
        return self._stages[stage].stats.mean / total_mean

    def summary(self) -> dict[str, dict[str, float]]:
        """Snapshot dict: stage -> {count, mean, p50, p90, p99, ...}."""
        out = {"total": self.total.snapshot()}
        for name, tracker in self._stages.items():
            out[name] = tracker.snapshot()
        return out


@dataclass
class FunnelCounter:
    """Counts flowing through the candidate -> notification funnel.

    ``stages`` maps stage name -> items *surviving* that stage; the input
    count is recorded under ``"raw"``.
    """

    stages: dict[str, int] = field(default_factory=dict)

    def count(self, stage: str, increment: int = 1) -> None:
        """Add *increment* survivors at *stage*."""
        self.stages[stage] = self.stages.get(stage, 0) + increment

    def get(self, stage: str) -> int:
        """Survivor count at *stage* (0 if never counted)."""
        return self.stages.get(stage, 0)

    def reduction_ratio(self, from_stage: str = "raw", to_stage: str = "delivered") -> float:
        """How many *from_stage* items it takes to yield one *to_stage* item."""
        survivors = self.get(to_stage)
        if survivors == 0:
            return float("inf")
        return self.get(from_stage) / survivors

    def survival_rate(self, from_stage: str, to_stage: str) -> float:
        """Fraction of *from_stage* items that survive to *to_stage*."""
        upstream = self.get(from_stage)
        if upstream == 0:
            return 0.0
        return self.get(to_stage) / upstream

    def as_rows(self) -> list[tuple[str, int]]:
        """(stage, count) rows in insertion order, for reports."""
        return list(self.stages.items())
