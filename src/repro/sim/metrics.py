"""Latency breakdowns and funnel counters for the simulated pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.stats import PercentileTracker
from repro.util.validation import require


class LatencyBreakdown:
    """Per-stage latency trackers plus the end-to-end total.

    Stages are registered lazily on first use, so the pipeline code simply
    calls ``record("queue:firehose", delay)`` and the breakdown takes shape
    from whatever stages actually ran.
    """

    def __init__(self) -> None:
        self.total = PercentileTracker()
        self._stages: dict[str, PercentileTracker] = {}

    def record(self, stage: str, seconds: float) -> None:
        """Add one observation for *stage*."""
        tracker = self._stages.get(stage)
        if tracker is None:
            tracker = PercentileTracker()
            self._stages[stage] = tracker
        tracker.add(seconds)

    def record_total(self, seconds: float) -> None:
        """Add one end-to-end observation."""
        self.total.add(seconds)

    def stages(self) -> list[str]:
        """Registered stage names, insertion-ordered."""
        return list(self._stages)

    def stage(self, name: str) -> PercentileTracker:
        """The tracker for *name* (KeyError if the stage never ran)."""
        return self._stages[name]

    def share_of_total(self, stage: str) -> float:
        """Mean fraction of total latency attributable to *stage*."""
        require(len(self.total) > 0, "no totals recorded")
        total_mean = self.total.stats.mean
        if total_mean == 0:
            return 0.0
        return self._stages[stage].stats.mean / total_mean

    def summary(self) -> dict[str, dict[str, float]]:
        """Snapshot dict: stage -> {count, mean, p50, p90, p99, ...}."""
        out = {"total": self.total.snapshot()}
        for name, tracker in self._stages.items():
            out[name] = tracker.snapshot()
        return out


@dataclass
class FunnelCounter:
    """Counts flowing through the candidate -> notification funnel.

    ``stages`` maps stage name -> items *surviving* that stage; the input
    count is recorded under ``"raw"``.
    """

    stages: dict[str, int] = field(default_factory=dict)

    def count(self, stage: str, increment: int = 1) -> None:
        """Add *increment* survivors at *stage*."""
        self.stages[stage] = self.stages.get(stage, 0) + increment

    def get(self, stage: str) -> int:
        """Survivor count at *stage* (0 if never counted)."""
        return self.stages.get(stage, 0)

    def reduction_ratio(self, from_stage: str = "raw", to_stage: str = "delivered") -> float:
        """How many *from_stage* items it takes to yield one *to_stage* item."""
        survivors = self.get(to_stage)
        if survivors == 0:
            return float("inf")
        return self.get(from_stage) / survivors

    def survival_rate(self, from_stage: str, to_stage: str) -> float:
        """Fraction of *from_stage* items that survive to *to_stage*."""
        upstream = self.get(from_stage)
        if upstream == 0:
            return 0.0
        return self.get(to_stage) / upstream

    def as_rows(self) -> list[tuple[str, int]]:
        """(stage, count) rows in insertion order, for reports."""
        return list(self.stages.items())
