"""Per-hop delay distributions for the simulated message queues.

The production pipeline moves each edge event through several queue stages
(firehose publish, fan-out/transport, push delivery) before the
notification reaches the phone.  The paper reports the resulting
end-to-end distribution — median ~7 s, p99 ~15 s — and attributes nearly
all of it to these queues.

:func:`production_queue_model` returns the substitute: three lognormal
hops whose parameters were **fit to the paper's reported percentiles**
(per-hop median 2.2 s, sigma 0.52, which yields a total median of ~7.2 s
and p99 of ~15.0 s).  The fit itself is therefore an input, not a result;
the end-to-end benchmark's genuine output is the *decomposition* —
measured graph-query milliseconds versus simulated queue seconds.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Sequence

from repro.util.validation import require, require_non_negative, require_positive

#: A delay model: a zero-argument callable returning seconds.
DelayModel = Callable[[], float]


class FixedDelay:
    """Always the same delay — for tests and degenerate configurations."""

    def __init__(self, seconds: float) -> None:
        require_non_negative(seconds, "seconds")
        self.seconds = seconds

    def __call__(self) -> float:
        return self.seconds


class UniformDelay:
    """Uniform delay in ``[low, high]`` — models polling/batching stages."""

    def __init__(self, low: float, high: float, rng: random.Random) -> None:
        require_non_negative(low, "low")
        require(high >= low, f"high ({high}) must be >= low ({low})")
        self.low = low
        self.high = high
        self._rng = rng

    def __call__(self) -> float:
        return self._rng.uniform(self.low, self.high)


class LogNormalDelay:
    """Lognormal delay parameterised by its median — the queue-hop staple.

    Heavy right tails (retries, GC pauses, backlog spikes) with a hard
    floor at zero make the lognormal the standard model for queue
    propagation delays.
    """

    def __init__(self, median: float, sigma: float, rng: random.Random) -> None:
        require_positive(median, "median")
        require_positive(sigma, "sigma")
        self.median = median
        self.sigma = sigma
        self._mu = math.log(median)
        self._rng = rng

    def __call__(self) -> float:
        return self._rng.lognormvariate(self._mu, self.sigma)


class MultiHopDelay:
    """Sum of independent per-hop delays (one sample from each)."""

    def __init__(self, hops: Sequence[DelayModel]) -> None:
        require(len(hops) >= 1, "need at least one hop")
        self.hops = list(hops)

    def __call__(self) -> float:
        return sum(hop() for hop in self.hops)


#: Calibration constants fit to the paper's reported end-to-end latency
#: (median ~7 s, p99 ~15 s over three queue stages).
PRODUCTION_HOP_MEDIAN = 2.2
PRODUCTION_HOP_SIGMA = 0.52
PRODUCTION_NUM_HOPS = 3


def production_queue_model(rng: random.Random) -> MultiHopDelay:
    """The calibrated three-hop queue pipeline of the production system.

    Sampling the sum yields a distribution with median ~7.2 s and
    p99 ~15.0 s, matching the paper's reported figures.
    """
    hops = [
        LogNormalDelay(PRODUCTION_HOP_MEDIAN, PRODUCTION_HOP_SIGMA, rng)
        for _ in range(PRODUCTION_NUM_HOPS)
    ]
    return MultiHopDelay(hops)
