"""A minimal, deterministic discrete-event simulator.

Callbacks are executed in timestamp order (FIFO among ties, via a
monotonically increasing sequence number), advancing a shared
:class:`~repro.sim.clock.VirtualClock`.  Virtual time never sleeps, so a
simulated hour of queue traffic runs in milliseconds of wall time.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.sim.clock import VirtualClock
from repro.util.validation import require


@dataclass(order=True, frozen=True)
class ScheduledEvent:
    """One pending callback in the event heap."""

    time: float
    sequence: int
    action: Callable[[], None] = field(compare=False)


class DiscreteEventSimulator:
    """Event-heap simulation over virtual time."""

    def __init__(self, clock: VirtualClock | None = None) -> None:
        self.clock = clock or VirtualClock()
        self._heap: list[ScheduledEvent] = []
        self._sequence = itertools.count()
        self.events_executed = 0

    def schedule_at(self, timestamp: float, action: Callable[[], None]) -> None:
        """Run *action* at absolute virtual time *timestamp*."""
        require(
            timestamp >= self.clock.now(),
            f"cannot schedule in the past: {timestamp} < {self.clock.now()}",
        )
        heapq.heappush(
            self._heap, ScheduledEvent(timestamp, next(self._sequence), action)
        )

    def schedule_after(self, delay: float, action: Callable[[], None]) -> None:
        """Run *action* after *delay* seconds of virtual time."""
        require(delay >= 0.0, f"delay must be non-negative, got {delay}")
        self.schedule_at(self.clock.now() + delay, action)

    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._heap)

    def step(self) -> bool:
        """Execute the next event; returns False when the heap is empty."""
        if not self._heap:
            return False
        event = heapq.heappop(self._heap)
        self.clock.advance_to(event.time)
        event.action()
        self.events_executed += 1
        return True

    def run(self, until: float | None = None) -> None:
        """Drain the heap, optionally stopping once virtual time passes *until*.

        Events scheduled *by* executed events are honoured, so cascades
        (queue hop -> consumer -> next queue hop) play out naturally.
        """
        while self._heap:
            if until is not None and self._heap[0].time > until:
                break
            self.step()
