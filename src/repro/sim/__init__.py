"""Discrete-event simulation of the production pipeline's timing.

The paper reports a median end-to-end latency of ~7 s and a p99 of ~15 s,
and attributes "nearly all" of it to event-propagation delays in message
queues, with graph queries taking "only a few milliseconds".  We cannot run
Twitter's queues, so this package simulates them:

* :mod:`~repro.sim.des` — a classic event-heap simulator over virtual time;
* :mod:`~repro.sim.latency` — per-hop delay distributions, with a
  calibration fit to the paper's reported median/p99 (see
  :func:`~repro.sim.latency.production_queue_model`);
* :mod:`~repro.sim.metrics` — latency breakdowns and funnel counters.

What the end-to-end benchmark *verifies* is not the absolute numbers (those
are fitted) but the decomposition: measured graph-query time must be a
vanishing fraction of total latency, matching the paper's claim.
"""

from repro.sim.clock import VirtualClock
from repro.sim.des import DiscreteEventSimulator, ScheduledEvent
from repro.sim.latency import (
    FixedDelay,
    LogNormalDelay,
    MultiHopDelay,
    UniformDelay,
    production_queue_model,
)
from repro.sim.metrics import FunnelCounter, LatencyBreakdown

__all__ = [
    "VirtualClock",
    "DiscreteEventSimulator",
    "ScheduledEvent",
    "FixedDelay",
    "LogNormalDelay",
    "MultiHopDelay",
    "UniformDelay",
    "production_queue_model",
    "FunnelCounter",
    "LatencyBreakdown",
]
