"""Virtual time for the discrete-event simulator."""

from __future__ import annotations

from repro.util.validation import require


class VirtualClock:
    """A monotonically nondecreasing simulated clock (seconds)."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = start

    def now(self) -> float:
        """Current virtual time."""
        return self._now

    def advance_to(self, timestamp: float) -> None:
        """Jump to *timestamp*; rejects travel into the past."""
        require(
            timestamp >= self._now,
            f"clock cannot go backwards: {timestamp} < {self._now}",
        )
        self._now = timestamp

    def advance_by(self, delta: float) -> None:
        """Advance by a non-negative *delta* seconds."""
        require(delta >= 0.0, f"delta must be non-negative, got {delta}")
        self._now += delta
