"""Follow-spree detection: a second motif family on augmented infrastructure.

The conclusion anticipates "additional programs that use the graph
infrastructure (which may need to be augmented to include other data
structures)".  This module is a worked instance of both halves:

* the augmented structure is
  :class:`~repro.graph.dynamic_index.DynamicSourceIndex` — recent edges
  keyed by *source* instead of target;
* the program is the **spree motif**: one account creating edges to at
  least ``k`` distinct targets within ``tau`` — the signature of
  follow-spam and automation, which the recommendation system must
  detect because spree edges would otherwise pollute D and fire bogus
  diamonds.

Alerts are a different output type from recommendations on purpose: they
feed abuse/quality systems, not the push pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.events import EdgeEvent
from repro.core.params import DetectionParams
from repro.graph.dynamic_index import DynamicSourceIndex
from repro.graph.ids import UserId


@dataclass(frozen=True, slots=True)
class SpreeAlert:
    """One spree detection: *actor* hit *distinct_targets* within the window."""

    actor: UserId
    distinct_targets: int
    first_edge_at: float
    detected_at: float

    @property
    def span(self) -> float:
        """Seconds between the earliest fresh edge and detection."""
        return self.detected_at - self.first_edge_at


class SpreeDetector:
    """Flags accounts creating edges to >= k distinct targets within tau."""

    def __init__(
        self,
        source_index: DynamicSourceIndex,
        params: DetectionParams | None = None,
        inserts_edges: bool = True,
        realert_after: float | None = None,
    ) -> None:
        """Create a spree detector.

        Args:
            source_index: the augmented source-keyed dynamic index.
            params: ``k`` = distinct-target threshold, ``tau`` = window
                (production-style defaults when omitted).
            inserts_edges: insert events into the index itself (False when
                a host owns the single insert).
            realert_after: suppress repeat alerts for the same actor for
                this many seconds (defaults to ``tau``).
        """
        self.params = params or DetectionParams(k=20, tau=300.0)
        if self.params.tau > source_index.retention:
            raise ValueError(
                f"params.tau={self.params.tau} exceeds the source index's "
                f"retention={source_index.retention}"
            )
        self._index = source_index
        self._inserts_edges = inserts_edges
        self._realert_after = (
            realert_after if realert_after is not None else self.params.tau
        )
        self._last_alert: dict[UserId, float] = {}
        self.alerts_emitted = 0

    @property
    def name(self) -> str:
        """Detector program identifier."""
        return "spree"

    def on_edge(self, event: EdgeEvent, now: float | None = None) -> list[SpreeAlert]:
        """Process one live edge; returns at most one alert."""
        if now is None:
            now = event.created_at
        if self._inserts_edges:
            self._index.insert(
                event.actor, event.target, event.created_at, action=event.action
            )
        fresh = self._index.fresh_targets(
            event.actor, now=max(now, event.created_at), tau=self.params.tau
        )
        if len(fresh) < self.params.k:
            return []
        last = self._last_alert.get(event.actor)
        if last is not None and now - last < self._realert_after:
            return []
        self._last_alert[event.actor] = now
        self.alerts_emitted += 1
        return [
            SpreeAlert(
                actor=event.actor,
                distinct_targets=len(fresh),
                first_edge_at=fresh[0].timestamp,
                detected_at=now,
            )
        ]
