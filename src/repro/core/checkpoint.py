"""Checkpointing the dynamic index for fast replica bootstrap.

A replacement replica that replays the stream from scratch serves wrong
(under-counted) results until its D warms up — the freshness window of
history is missing.  Production bootstraps from a snapshot plus stream
catch-up; this module provides the snapshot half: serialize a
:class:`~repro.graph.dynamic_index.DynamicEdgeIndex` to a compact ``.npz``
and restore it with its action tags intact.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.events import ActionType
from repro.graph.dynamic_index import DynamicEdgeIndex

#: Integer codes for action tags in the checkpoint file (0 = untagged).
_ACTION_TO_CODE: dict[object, int] = {
    None: 0,
    ActionType.FOLLOW: 1,
    ActionType.RETWEET: 2,
    ActionType.FAVORITE: 3,
}
_CODE_TO_ACTION = {code: action for action, code in _ACTION_TO_CODE.items()}


def dynamic_index_arrays(index: DynamicEdgeIndex) -> dict[str, np.ndarray]:
    """Every stored edge of *index* as flat parallel columns.

    The in-memory twin of :func:`save_dynamic_index`'s edge payload —
    the cluster's ``checkpoint`` control message and the durability
    tier's snapshot store both ship these arrays instead of a file.
    Per-target arrival order is preserved, which is the only ordering
    the ring/deque stores depend on.
    """
    targets: list[int] = []
    timestamps: list[float] = []
    sources: list[int] = []
    actions: list[int] = []
    for c in index.targets():
        for timestamp, b, action in index.entries(c):
            targets.append(c)
            timestamps.append(timestamp)
            sources.append(b)
            actions.append(_ACTION_TO_CODE.get(action, 0))
    return {
        "targets": np.asarray(targets, dtype=np.int64),
        "timestamps": np.asarray(timestamps, dtype=np.float64),
        "sources": np.asarray(sources, dtype=np.int64),
        "actions": np.asarray(actions, dtype=np.int8),
    }


def restore_dynamic_arrays(
    index: DynamicEdgeIndex, arrays: dict[str, np.ndarray]
) -> int:
    """Re-insert :func:`dynamic_index_arrays` edges into a live *index*.

    Insertion follows array order (per-target arrival order), so window
    and cap pruning semantics carry over exactly.  Returns the number of
    edges inserted.
    """
    targets = arrays["targets"]
    timestamps = arrays["timestamps"]
    sources = arrays["sources"]
    actions = arrays["actions"]
    for i in range(len(targets)):
        code = int(actions[i])
        if code not in _CODE_TO_ACTION:
            raise ValueError(f"unknown action code {code} in checkpoint arrays")
        index.insert(
            int(sources[i]),
            int(targets[i]),
            float(timestamps[i]),
            action=_CODE_TO_ACTION[code],
        )
    return len(targets)


def save_dynamic_index(index: DynamicEdgeIndex, path: str | Path) -> int:
    """Write every stored edge of *index* to *path* (.npz).

    Returns the number of edges written.  Configuration (retention, caps,
    storage backend) is saved alongside so a restore reproduces the same
    index — :meth:`DynamicEdgeIndex.entries` serves the stored tuples
    identically whether a target lives in a deque or a columnar ring.
    """
    arrays = dynamic_index_arrays(index)
    np.savez_compressed(
        Path(path),
        **arrays,
        retention=np.float64(index.retention),
        max_edges_per_target=np.int64(index.max_edges_per_target or -1),
        backend=np.str_(index.backend),
        promote_threshold=np.int64(index.promote_threshold),
    )
    return len(arrays["targets"])


def load_dynamic_index(
    path: str | Path, backend: str | None = None
) -> DynamicEdgeIndex:
    """Restore a :func:`save_dynamic_index` checkpoint.

    Edges are re-inserted in file order (which preserves per-target
    arrival order), so window and cap pruning semantics carry over
    exactly.  The storage backend recorded at save time is restored unless
    *backend* overrides it (checkpoints predating the backend field load
    as ``"list"``).
    """
    with np.load(Path(path)) as data:
        retention = float(data["retention"])
        cap = int(data["max_edges_per_target"])
        if backend is None:
            backend = (
                str(data["backend"]) if "backend" in data.files else "list"
            )
        promote_threshold = (
            int(data["promote_threshold"])
            if "promote_threshold" in data.files
            else None
        )
        kwargs = {}
        if promote_threshold is not None:
            kwargs["promote_threshold"] = promote_threshold
        index = DynamicEdgeIndex(
            retention=retention,
            max_edges_per_target=None if cap < 0 else cap,
            backend=backend,
            **kwargs,
        )
        restore_dynamic_arrays(
            index,
            {
                "targets": data["targets"],
                "timestamps": data["timestamps"],
                "sources": data["sources"],
                "actions": data["actions"],
            },
        )
    return index
