"""The raw recommendation candidates the detectors emit.

A :class:`Recommendation` is *raw*: the same (recipient, candidate) pair may
be emitted repeatedly as a motif keeps re-firing while new B's pile onto a
hot C.  Production generates "billions of raw candidates" a day and the
delivery pipeline (:mod:`repro.delivery`) reduces them to millions of push
notifications; we preserve that split.

The *columnar* shapes keep that raw volume out of the Python object heap:

* :class:`RecommendationGroup` — one detection trigger's emission: an
  ``int64`` recipient array plus the metadata every recipient shares
  (candidate, creation time, motif, action, witnesses);
* :class:`RecommendationBatch` — an ordered collection of groups, the
  native currency from the batched detector through the delivery funnel.
  It iterates (lazily) as the exact :class:`Recommendation` sequence the
  per-candidate path would have produced, so any consumer that only wants
  boxed objects still gets them — but the hot path (the funnel's
  ``offer_batch``) consumes the flat columns and boxes only the final
  survivors, the paper's millions rather than billions.

``docs/ARCHITECTURE.md`` maps where these shapes sit in the end-to-end
columnar path (detector -> engine -> broker -> push queue -> coalescer ->
funnel) and the equivalence-testing convention that keeps the boxed and
columnar views interchangeable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.core.events import ActionType
from repro.graph.ids import UserId


@dataclass(frozen=True, slots=True)
class Recommendation:
    """One raw candidate: tell *recipient* about *candidate*.

    Attributes:
        recipient: the A who should receive the push notification.
        candidate: the C being recommended (account or content id).
        created_at: detection time (the triggering edge's timestamp).
        motif: name of the motif program that fired (e.g. ``"diamond"``).
        action: the action type of the triggering edge.
        via: the fresh B's whose edges completed the motif, in timestamp
            order — the "3 of the people you follow just followed C"
            explanation string comes from here.
    """

    recipient: UserId
    candidate: UserId
    created_at: float
    motif: str = "diamond"
    action: ActionType = field(default=ActionType.FOLLOW, compare=False)
    via: tuple[UserId, ...] = field(default=(), compare=False)

    def key(self) -> tuple[UserId, UserId]:
        """The dedup key used downstream: (recipient, candidate)."""
        return (self.recipient, self.candidate)


class RecommendationGroup:
    """One detection group: shared metadata over an ``int64`` recipient array.

    A single motif trigger recommends the same candidate to every recipient
    in its audience; only the recipient varies.  Storing the audience as one
    numpy column (plus one copy of the shared metadata) is what removes the
    per-candidate dataclass boxing from the burst-heavy hot path.

    ``via`` may be passed either as the usual tuple or as an ``int64``
    numpy array (the detector hands over its freshness-scan column
    unboxed); :attr:`via` always reads back as a tuple, materialized once.
    """

    __slots__ = (
        "recipients",
        "candidate",
        "created_at",
        "motif",
        "action",
        "_via",
        "_recipients_list",
    )

    def __init__(
        self,
        recipients: np.ndarray | Sequence[UserId],
        candidate: UserId,
        created_at: float,
        motif: str = "diamond",
        action: ActionType = ActionType.FOLLOW,
        via: tuple[UserId, ...] | np.ndarray = (),
    ) -> None:
        if type(recipients) is np.ndarray:
            self.recipients = recipients
            self._recipients_list: list[int] | None = None
        else:
            self._recipients_list = list(recipients)
            self.recipients = np.asarray(self._recipients_list, dtype=np.int64)
        self.candidate = candidate
        self.created_at = created_at
        self.motif = motif
        self.action = action
        self._via = via

    def __len__(self) -> int:
        return len(self.recipients)

    @property
    def via(self) -> tuple[UserId, ...]:
        """The shared witness tuple (decoded from the column on first use)."""
        via = self._via
        if type(via) is not tuple:
            via = self._via = tuple(via.tolist())
        return via

    @property
    def num_witnesses(self) -> int:
        """Witness count without materializing the tuple."""
        return len(self._via)

    def recipients_list(self) -> list[int]:
        """The recipient column as plain Python ints (cached ``tolist``)."""
        recipients = self._recipients_list
        if recipients is None:
            recipients = self._recipients_list = self.recipients.tolist()
        return recipients

    def with_recipients(self, recipients: np.ndarray) -> "RecommendationGroup":
        """A new group over *recipients* sharing this group's metadata.

        The delivery shard splitter's primitive: a trigger's audience is
        partitioned by recipient hash, and each shard's slice keeps one
        reference to the shared (candidate, via, ...) metadata — nothing
        per recipient is copied or boxed.
        """
        return RecommendationGroup(
            recipients,
            self.candidate,
            self.created_at,
            motif=self.motif,
            action=self.action,
            via=self._via,
        )

    def recommendation_at(self, i: int) -> Recommendation:
        """Box the *i*-th recipient's :class:`Recommendation`."""
        return Recommendation(
            recipient=self.recipients_list()[i],
            candidate=self.candidate,
            created_at=self.created_at,
            motif=self.motif,
            action=self.action,
            via=self.via,
        )

    def __iter__(self) -> Iterator[Recommendation]:
        candidate = self.candidate
        created_at = self.created_at
        motif = self.motif
        action = self.action
        via = self.via
        for recipient in self.recipients_list():
            yield Recommendation(
                recipient=recipient,
                candidate=candidate,
                created_at=created_at,
                motif=motif,
                action=action,
                via=via,
            )


class CandidateColumns:
    """A flat columnar view over a batch's candidates (funnel currency).

    Positionally-aligned ``int64`` columns — one entry per raw candidate —
    plus cached plain-list decodings for the stages whose state lives in
    Python dicts.  ``compress`` narrows the view to a boolean mask's
    survivors, which is how the pipeline threads short-circuit semantics
    through vectorized stages.
    """

    __slots__ = ("recipients", "candidates", "_recipients_list", "_candidates_list")

    def __init__(
        self,
        recipients: np.ndarray,
        candidates: np.ndarray,
        recipients_list: list[int] | None = None,
        candidates_list: list[int] | None = None,
    ) -> None:
        self.recipients = recipients
        self.candidates = candidates
        self._recipients_list = recipients_list
        self._candidates_list = candidates_list

    def __len__(self) -> int:
        return len(self.recipients)

    def recipients_list(self) -> list[int]:
        """Recipient ids as plain ints (cached one-shot ``tolist``)."""
        out = self._recipients_list
        if out is None:
            out = self._recipients_list = self.recipients.tolist()
        return out

    def candidates_list(self) -> list[int]:
        """Candidate ids as plain ints (cached one-shot ``tolist``)."""
        out = self._candidates_list
        if out is None:
            out = self._candidates_list = self.candidates.tolist()
        return out

    def compress(self, mask: np.ndarray) -> "CandidateColumns":
        """The view restricted to ``mask``'s True positions, order kept."""
        return CandidateColumns(self.recipients[mask], self.candidates[mask])


class RecommendationBatch:
    """A columnar candidate set: the native detection -> delivery currency.

    An ordered sequence of :class:`RecommendationGroup`s.  Iterating yields
    exactly the boxed :class:`Recommendation` sequence the per-candidate
    path would emit (group order, then recipient order within each group),
    so the batch is drop-in wherever a candidate list was consumed; the
    funnel instead reads :meth:`columns` and never boxes non-survivors.

    Batches are treated as immutable once emitted — merging produces a new
    batch (:meth:`concat`), and the shared :data:`EMPTY_RECOMMENDATION_BATCH`
    stands in for "no candidates" without allocating.
    """

    __slots__ = ("groups", "_total", "_offsets", "_columns")

    def __init__(self, groups: Iterable[RecommendationGroup] = ()) -> None:
        self.groups: list[RecommendationGroup] = list(groups)
        self._total: int | None = None
        self._offsets: np.ndarray | None = None
        self._columns: CandidateColumns | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_recommendations(
        cls, recommendations: Iterable[Recommendation]
    ) -> "RecommendationBatch":
        """Re-column a boxed candidate sequence (foreign detectors, tests).

        Consecutive recommendations sharing their group metadata collapse
        into one group, so round-tripping a batch through boxed form and
        back reconstructs the original grouping; iteration order is
        preserved exactly either way.
        """
        groups: list[RecommendationGroup] = []
        meta: tuple | None = None
        recipients: list[int] = []
        for rec in recommendations:
            rec_meta = (rec.candidate, rec.created_at, rec.motif, rec.action, rec.via)
            if meta != rec_meta:
                if recipients:
                    groups.append(RecommendationGroup(recipients, *meta))
                meta = rec_meta
                recipients = []
            recipients.append(rec.recipient)
        if recipients:
            groups.append(RecommendationGroup(recipients, *meta))
        if not groups:
            return EMPTY_RECOMMENDATION_BATCH
        return cls(groups)

    def concat(self, other: "RecommendationBatch") -> "RecommendationBatch":
        """A new batch with *other*'s groups appended (empties alias)."""
        if not other.groups:
            return self
        if not self.groups:
            return other
        return RecommendationBatch(self.groups + other.groups)

    @classmethod
    def concat_all(
        cls, batches: Iterable["RecommendationBatch"]
    ) -> "RecommendationBatch":
        """One batch holding every group of *batches*, in input order.

        The delivery coalescer's merge: group arrays are shared, never
        copied, and degenerate inputs alias (a single non-empty input is
        returned as-is; an all-empty input is the shared empty batch).

        >>> a = RecommendationBatch(
        ...     [RecommendationGroup([1, 2], candidate=9, created_at=0.0)]
        ... )
        >>> b = RecommendationBatch(
        ...     [RecommendationGroup([3], candidate=8, created_at=1.0)]
        ... )
        >>> merged = RecommendationBatch.concat_all(
        ...     [a, EMPTY_RECOMMENDATION_BATCH, b]
        ... )
        >>> [rec.recipient for rec in merged]
        [1, 2, 3]
        >>> RecommendationBatch.concat_all([a]) is a
        True
        """
        non_empty = [batch for batch in batches if batch.groups]
        if not non_empty:
            return EMPTY_RECOMMENDATION_BATCH
        if len(non_empty) == 1:
            return non_empty[0]
        groups: list[RecommendationGroup] = []
        for batch in non_empty:
            groups.extend(batch.groups)
        return cls(groups)

    # ------------------------------------------------------------------
    # Sequence protocol (lazy boxed view)
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        total = self._total
        if total is None:
            total = self._total = sum(len(group) for group in self.groups)
        return total

    def __bool__(self) -> bool:
        return len(self) > 0

    def __iter__(self) -> Iterator[Recommendation]:
        for group in self.groups:
            yield from group

    def __getitem__(self, i: int) -> Recommendation:
        if i < 0:
            i += len(self)
        group_index = int(
            np.searchsorted(self.offsets(), i, side="right") - 1
        )
        if not 0 <= group_index < len(self.groups):
            raise IndexError(i)
        offset = int(self.offsets()[group_index])
        return self.groups[group_index].recommendation_at(i - offset)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (RecommendationBatch, list, tuple)):
            return list(self) == list(other)
        return NotImplemented

    def to_recommendations(self) -> list[Recommendation]:
        """Materialize the full boxed candidate list (baselines, tests)."""
        return list(self)

    # ------------------------------------------------------------------
    # Columnar views
    # ------------------------------------------------------------------

    def offsets(self) -> np.ndarray:
        """Flat start offset of each group (cached, length ``num_groups``)."""
        offsets = self._offsets
        if offsets is None:
            sizes = np.fromiter(
                (len(group) for group in self.groups),
                dtype=np.int64,
                count=len(self.groups),
            )
            offsets = np.concatenate(([0], np.cumsum(sizes)[:-1])) if len(sizes) else sizes
            self._offsets = offsets
        return offsets

    def columns(self) -> CandidateColumns:
        """The flattened (recipients, candidates) columns (cached).

        ``candidates`` repeats each group's shared candidate across its
        recipients so both columns align per raw candidate.
        """
        columns = self._columns
        if columns is None:
            groups = self.groups
            if not groups:
                columns = CandidateColumns(_EMPTY_INT64, _EMPTY_INT64, [], [])
            elif len(groups) == 1:
                group = groups[0]
                n = len(group)
                columns = CandidateColumns(
                    group.recipients,
                    np.full(n, group.candidate, dtype=np.int64),
                    group.recipients_list(),
                    [group.candidate] * n,
                )
            else:
                recipients = np.concatenate([g.recipients for g in groups])
                sizes = [len(g) for g in groups]
                candidates = np.repeat(
                    np.fromiter(
                        (g.candidate for g in groups),
                        dtype=np.int64,
                        count=len(groups),
                    ),
                    sizes,
                )
                columns = CandidateColumns(recipients, candidates)
            self._columns = columns
        return columns

    def select(self, indices: np.ndarray) -> list[Recommendation]:
        """Box only the candidates at the given ascending flat *indices*.

        This is the funnel's terminal materialization: survivors (the
        millions) become :class:`Recommendation` objects; everything the
        funnel dropped (the billions) never leaves the columns.
        """
        if not len(indices):
            return []
        offsets = self.offsets()
        group_ids = np.searchsorted(offsets, indices, side="right") - 1
        groups = self.groups
        out: list[Recommendation] = []
        offsets_list = offsets.tolist()
        for flat_index, group_index in zip(indices.tolist(), group_ids.tolist()):
            group = groups[group_index]
            out.append(group.recommendation_at(flat_index - offsets_list[group_index]))
        return out


#: Shared immutable "no candidates" batch; never mutated (concat aliases
#: around it, and consumers treat emitted batches as read-only).
EMPTY_RECOMMENDATION_BATCH = RecommendationBatch()

_EMPTY_INT64 = np.empty(0, dtype=np.int64)
