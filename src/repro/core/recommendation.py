"""The raw recommendation candidates the detectors emit.

A :class:`Recommendation` is *raw*: the same (recipient, candidate) pair may
be emitted repeatedly as a motif keeps re-firing while new B's pile onto a
hot C.  Production generates "billions of raw candidates" a day and the
delivery pipeline (:mod:`repro.delivery`) reduces them to millions of push
notifications; we preserve that split.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.events import ActionType
from repro.graph.ids import UserId


@dataclass(frozen=True, slots=True)
class Recommendation:
    """One raw candidate: tell *recipient* about *candidate*.

    Attributes:
        recipient: the A who should receive the push notification.
        candidate: the C being recommended (account or content id).
        created_at: detection time (the triggering edge's timestamp).
        motif: name of the motif program that fired (e.g. ``"diamond"``).
        action: the action type of the triggering edge.
        via: the fresh B's whose edges completed the motif, in timestamp
            order — the "3 of the people you follow just followed C"
            explanation string comes from here.
    """

    recipient: UserId
    candidate: UserId
    created_at: float
    motif: str = "diamond"
    action: ActionType = field(default=ActionType.FOLLOW, compare=False)
    via: tuple[UserId, ...] = field(default=(), compare=False)

    def key(self) -> tuple[UserId, UserId]:
        """The dedup key used downstream: (recipient, candidate)."""
        return (self.recipient, self.candidate)
