"""Single-machine motif engine: S + D + detector programs in one process.

This is the paper's design "for the case where the entire graph fits on a
single machine"; :mod:`repro.cluster` stacks twenty of these behind brokers.
The engine owns the one insert into D per event and fans the event out to
every registered detector program, timing the detection work so benchmarks
can verify the "graph queries take only a few milliseconds" claim.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field

from repro.core.batch import EventBatch, iter_event_batches
from repro.core.detector import OnlineDetector
from repro.core.diamond import DiamondDetector
from repro.core.events import EdgeEvent
from repro.core.params import DetectionParams
from repro.core.recommendation import Recommendation, RecommendationBatch
from repro.graph.dynamic_index import DynamicEdgeIndex
from repro.graph.snapshot import GraphSnapshot, build_follower_snapshot
from repro.graph.static_index import StaticFollowerIndex
from repro.util.stats import PercentileTracker
from repro.util.validation import require


def _as_batch(recs: RecommendationBatch | list[Recommendation]) -> RecommendationBatch:
    """Normalize a detector's per-event result to the columnar currency."""
    if type(recs) is RecommendationBatch:
        return recs
    return RecommendationBatch.from_recommendations(recs)


@dataclass
class EngineStats:
    """Aggregate engine-level counters and the per-event latency tracker."""

    events_processed: int = 0
    recommendations_emitted: int = 0
    #: Seconds of detection work per event (insert + all detector programs).
    query_latency: PercentileTracker = field(
        default_factory=lambda: PercentileTracker(max_samples=50_000)
    )


class MotifEngine:
    """Drives one D copy and any number of detector programs."""

    def __init__(
        self,
        static_index: StaticFollowerIndex,
        dynamic_index: DynamicEdgeIndex,
        detectors: list[OnlineDetector] | None = None,
        track_latency: bool = True,
    ) -> None:
        """Assemble an engine from prebuilt indexes.

        Args:
            static_index: the S structure (whole graph or partition shard).
            dynamic_index: the D structure this engine inserts into.
            detectors: detector programs; when omitted, a single
                :class:`DiamondDetector` with production parameters is
                registered.  Detectors must have been constructed with
                ``inserts_edges=False`` — the engine owns the insert.
            track_latency: record per-event detection latency (small
                constant overhead; benchmarks that measure raw throughput
                can disable it).
        """
        self.static_index = static_index
        self.dynamic_index = dynamic_index
        if detectors is None:
            detectors = [
                DiamondDetector(
                    static_index,
                    dynamic_index,
                    DetectionParams(),
                    inserts_edges=False,
                )
            ]
        require(len(detectors) > 0, "an engine needs at least one detector")
        self.detectors: list[OnlineDetector] = list(detectors)
        self._track_latency = track_latency
        self.stats = EngineStats()

    @classmethod
    def from_snapshot(
        cls,
        snapshot: GraphSnapshot,
        params: DetectionParams | None = None,
        influencer_limit: int | None = None,
        retention: float | None = None,
        max_edges_per_target: int | None = None,
        track_latency: bool = True,
        s_backend: str = "csr",
        d_backend: str = "ring",
    ) -> "MotifEngine":
        """Build the standard production stack from an offline snapshot.

        Args:
            snapshot: the offline ``A -> B`` follow graph.
            params: diamond parameters (production defaults when omitted).
            influencer_limit: per-user cap applied while inverting into S.
            retention: D retention seconds; defaults to ``params.tau``.
            max_edges_per_target: per-C cap on stored D entries (the
                paper's "pruning the D data structure to only retain the
                most recent edges"); ``None`` keeps everything in-window.
            s_backend: S storage layout — ``"csr"`` (single int64 arena,
                default) or ``"packed"`` (one buffer per B).
            d_backend: D storage layout — ``"ring"`` (columnar ring buffers
                for hot targets, default) or ``"list"`` (deques only).
                Both knobs change representation only, never results.
        """
        params = params or DetectionParams()
        static_index = build_follower_snapshot(
            snapshot, influencer_limit=influencer_limit, backend=s_backend
        )
        dynamic_index = DynamicEdgeIndex(
            retention=retention or params.tau,
            max_edges_per_target=max_edges_per_target,
            backend=d_backend,
        )
        detector = DiamondDetector(
            static_index, dynamic_index, params, inserts_edges=False
        )
        return cls(
            static_index,
            dynamic_index,
            [detector],
            track_latency=track_latency,
        )

    # ------------------------------------------------------------------
    # Event path
    # ------------------------------------------------------------------

    def process(
        self, event: EdgeEvent, now: float | None = None
    ) -> list[Recommendation]:
        """Ingest one live edge and run every detector program on it.

        ``now`` is the processing time for freshness evaluation (defaults
        to the event's creation time; see ``DiamondDetector.on_edge``).
        """
        started = time.perf_counter() if self._track_latency else 0.0
        self.dynamic_index.insert(
            event.actor, event.target, event.created_at, action=event.action
        )
        recommendations: list[Recommendation] = []
        for detector in self.detectors:
            recommendations.extend(detector.on_edge(event, now))
        self.stats.events_processed += 1
        self.stats.recommendations_emitted += len(recommendations)
        if self._track_latency:
            self.stats.query_latency.add(time.perf_counter() - started)
        return recommendations

    def process_batch(
        self, batch: EventBatch, now: float | None = None
    ) -> list[Recommendation]:
        """Ingest a columnar micro-batch; returns all candidates, flat.

        Emits exactly the recommendations (and leaves exactly the index
        state) the per-event :meth:`process` loop would, in the same order.
        This is the *boxed* view — each candidate is materialized as a
        :class:`Recommendation`; throughput-critical callers should consume
        :meth:`process_batch_grouped`'s columnar batches instead.
        """
        return list(
            itertools.chain.from_iterable(self.process_batch_grouped(batch, now))
        )

    def process_batch_grouped(
        self, batch: EventBatch, now: float | None = None
    ) -> list[RecommendationBatch]:
        """Batched ingest keeping per-event attribution (one columnar
        :class:`~repro.core.recommendation.RecommendationBatch` per event).

        The batch is split into maximal distinct-target runs; each run is
        bulk-inserted into D once and then handed to every detector program,
        which preserves per-event semantics exactly for batch-aware
        detectors (an event's freshness query reads only its own target's D
        entry — see :meth:`EventBatch.distinct_target_runs`).  If *any*
        registered detector lacks ``process_batch``, the whole batch falls
        back to the interleaved per-event loop instead: run pre-insertion
        is only provably exact for target-keyed D reads, and an arbitrary
        ``on_edge`` may read D however it likes.

        Detector ``process_batch`` results may be columnar batches (the
        native currency) or plain per-event candidate lists (foreign
        detectors); the engine normalizes everything to
        :class:`RecommendationBatch`, so downstream layers — partitions,
        brokers, the delivery funnel — see one shape.

        With latency tracking enabled, one *amortized* per-event sample
        (batch wall time / batch size) is recorded per batch rather than one
        sample per event.
        """
        n = len(batch)
        if n == 0:
            return []
        started = time.perf_counter() if self._track_latency else 0.0
        out: list[RecommendationBatch] = [None] * n  # type: ignore[list-item]
        detectors = self.detectors
        batch_methods = [
            getattr(detector, "process_batch", None) for detector in detectors
        ]
        if any(method is None for method in batch_methods):
            # Exact-by-construction fallback: insert then detect, one event
            # at a time, just like process() would.
            insert = self.dynamic_index.insert
            for i, event in enumerate(batch.to_events()):
                insert(
                    event.actor, event.target, event.created_at,
                    action=event.action,
                )
                per_event: list[Recommendation] = []
                for detector in detectors:
                    per_event.extend(detector.on_edge(event, now))
                out[i] = RecommendationBatch.from_recommendations(per_event)
        else:
            insert_batch = self.dynamic_index.insert_batch
            for start, stop in batch.distinct_target_runs():
                run = batch.slice(start, stop)
                insert_batch(run, distinct_targets=True)
                first = True
                for process_batch in batch_methods:
                    results = process_batch(run, now)
                    if first:
                        for j, recs in enumerate(results):
                            out[start + j] = _as_batch(recs)
                        first = False
                    else:
                        for j, recs in enumerate(results):
                            if len(recs):
                                # Merge-by-concat: batches are treated as
                                # read-only, so concatenation never mutates
                                # a detector's (possibly shared) result.
                                out[start + j] = out[start + j].concat(
                                    _as_batch(recs)
                                )
        emitted = sum(map(len, out))
        self.stats.events_processed += n
        self.stats.recommendations_emitted += emitted
        if self._track_latency:
            self.stats.query_latency.add((time.perf_counter() - started) / n)
        return out

    def process_stream(
        self, events: list[EdgeEvent], batch_size: int = 1
    ) -> list[Recommendation]:
        """Convenience: process a list of events, returning all candidates.

        ``batch_size > 1`` drives the stream through the columnar
        :meth:`process_batch` path in chunks of that size.
        """
        require(batch_size >= 1, f"batch_size must be >= 1, got {batch_size}")
        if batch_size > 1:
            recommendations = []
            for batch in iter_event_batches(events, batch_size):
                recommendations.extend(self.process_batch(batch))
            return recommendations
        recommendations: list[Recommendation] = []
        for event in events:
            recommendations.extend(self.process(event))
        return recommendations

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def reload_static_index(self, static_index: StaticFollowerIndex) -> None:
        """Swap in a freshly-loaded S snapshot without pausing the stream.

        Mirrors production's periodic offline load: every detector program
        is rebound to the new index; D and all in-flight freshness state
        are untouched.  Detectors that do not support rebinding (no
        ``rebind_static``) raise — hosting such a program on an engine
        that reloads would silently serve stale data.
        """
        for detector in self.detectors:
            rebind = getattr(detector, "rebind_static", None)
            if rebind is None:
                raise TypeError(
                    f"detector {detector.name!r} does not support "
                    "rebind_static; cannot hot-reload S under it"
                )
            rebind(static_index)
        self.static_index = static_index

    def prune(self, now: float) -> int:
        """Evict expired edges from D; returns the number removed."""
        return self.dynamic_index.prune_expired(now)

    def memory_bytes(self) -> dict[str, int]:
        """Approximate footprint of both indexes, keyed by structure."""
        return {
            "static_index": self.static_index.memory_bytes(),
            "dynamic_index": self.dynamic_index.memory_bytes(),
        }
