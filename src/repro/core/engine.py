"""Single-machine motif engine: S + D + detector programs in one process.

This is the paper's design "for the case where the entire graph fits on a
single machine"; :mod:`repro.cluster` stacks twenty of these behind brokers.
The engine owns the one insert into D per event and fans the event out to
every registered detector program, timing the detection work so benchmarks
can verify the "graph queries take only a few milliseconds" claim.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.detector import OnlineDetector
from repro.core.diamond import DiamondDetector
from repro.core.events import EdgeEvent
from repro.core.params import DetectionParams
from repro.core.recommendation import Recommendation
from repro.graph.dynamic_index import DynamicEdgeIndex
from repro.graph.snapshot import GraphSnapshot, build_follower_snapshot
from repro.graph.static_index import StaticFollowerIndex
from repro.util.stats import PercentileTracker
from repro.util.validation import require


@dataclass
class EngineStats:
    """Aggregate engine-level counters and the per-event latency tracker."""

    events_processed: int = 0
    recommendations_emitted: int = 0
    #: Seconds of detection work per event (insert + all detector programs).
    query_latency: PercentileTracker = field(
        default_factory=lambda: PercentileTracker(max_samples=50_000)
    )


class MotifEngine:
    """Drives one D copy and any number of detector programs."""

    def __init__(
        self,
        static_index: StaticFollowerIndex,
        dynamic_index: DynamicEdgeIndex,
        detectors: list[OnlineDetector] | None = None,
        track_latency: bool = True,
    ) -> None:
        """Assemble an engine from prebuilt indexes.

        Args:
            static_index: the S structure (whole graph or partition shard).
            dynamic_index: the D structure this engine inserts into.
            detectors: detector programs; when omitted, a single
                :class:`DiamondDetector` with production parameters is
                registered.  Detectors must have been constructed with
                ``inserts_edges=False`` — the engine owns the insert.
            track_latency: record per-event detection latency (small
                constant overhead; benchmarks that measure raw throughput
                can disable it).
        """
        self.static_index = static_index
        self.dynamic_index = dynamic_index
        if detectors is None:
            detectors = [
                DiamondDetector(
                    static_index,
                    dynamic_index,
                    DetectionParams(),
                    inserts_edges=False,
                )
            ]
        require(len(detectors) > 0, "an engine needs at least one detector")
        self.detectors: list[OnlineDetector] = list(detectors)
        self._track_latency = track_latency
        self.stats = EngineStats()

    @classmethod
    def from_snapshot(
        cls,
        snapshot: GraphSnapshot,
        params: DetectionParams | None = None,
        influencer_limit: int | None = None,
        retention: float | None = None,
        max_edges_per_target: int | None = None,
        track_latency: bool = True,
    ) -> "MotifEngine":
        """Build the standard production stack from an offline snapshot.

        Args:
            snapshot: the offline ``A -> B`` follow graph.
            params: diamond parameters (production defaults when omitted).
            influencer_limit: per-user cap applied while inverting into S.
            retention: D retention seconds; defaults to ``params.tau``.
            max_edges_per_target: per-C cap on stored D entries (the
                paper's "pruning the D data structure to only retain the
                most recent edges"); ``None`` keeps everything in-window.
        """
        params = params or DetectionParams()
        static_index = build_follower_snapshot(
            snapshot, influencer_limit=influencer_limit
        )
        dynamic_index = DynamicEdgeIndex(
            retention=retention or params.tau,
            max_edges_per_target=max_edges_per_target,
        )
        detector = DiamondDetector(
            static_index, dynamic_index, params, inserts_edges=False
        )
        return cls(
            static_index,
            dynamic_index,
            [detector],
            track_latency=track_latency,
        )

    # ------------------------------------------------------------------
    # Event path
    # ------------------------------------------------------------------

    def process(
        self, event: EdgeEvent, now: float | None = None
    ) -> list[Recommendation]:
        """Ingest one live edge and run every detector program on it.

        ``now`` is the processing time for freshness evaluation (defaults
        to the event's creation time; see ``DiamondDetector.on_edge``).
        """
        started = time.perf_counter() if self._track_latency else 0.0
        self.dynamic_index.insert(
            event.actor, event.target, event.created_at, action=event.action
        )
        recommendations: list[Recommendation] = []
        for detector in self.detectors:
            recommendations.extend(detector.on_edge(event, now))
        self.stats.events_processed += 1
        self.stats.recommendations_emitted += len(recommendations)
        if self._track_latency:
            self.stats.query_latency.add(time.perf_counter() - started)
        return recommendations

    def process_stream(self, events: list[EdgeEvent]) -> list[Recommendation]:
        """Convenience: process a list of events, returning all candidates."""
        recommendations: list[Recommendation] = []
        for event in events:
            recommendations.extend(self.process(event))
        return recommendations

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def reload_static_index(self, static_index: StaticFollowerIndex) -> None:
        """Swap in a freshly-loaded S snapshot without pausing the stream.

        Mirrors production's periodic offline load: every detector program
        is rebound to the new index; D and all in-flight freshness state
        are untouched.  Detectors that do not support rebinding (no
        ``rebind_static``) raise — hosting such a program on an engine
        that reloads would silently serve stale data.
        """
        for detector in self.detectors:
            rebind = getattr(detector, "rebind_static", None)
            if rebind is None:
                raise TypeError(
                    f"detector {detector.name!r} does not support "
                    "rebind_static; cannot hot-reload S under it"
                )
            rebind(static_index)
        self.static_index = static_index

    def prune(self, now: float) -> int:
        """Evict expired edges from D; returns the number removed."""
        return self.dynamic_index.prune_expired(now)

    def memory_bytes(self) -> dict[str, int]:
        """Approximate footprint of both indexes, keyed by structure."""
        return {
            "static_index": self.static_index.memory_bytes(),
            "dynamic_index": self.dynamic_index.memory_bytes(),
        }
