"""Online diamond-motif detection — the production algorithm of §2.

When a live ``B -> C`` edge arrives:

1. insert it into the dynamic index **D**;
2. query D for the other B's with a fresh (within ``tau``) edge to C — the
   *top half* of the diamond;
3. if at least ``k`` fresh B's point at C, look up each B's sorted follower
   list in the static index **S** and compute the **k-overlap** — every A
   following at least ``k`` of the fresh B's.  With exactly ``k`` fresh B's
   this is the plain intersection of the paper's worked example;
4. emit a raw :class:`~repro.core.recommendation.Recommendation` of C to
   each such A.

The detector is deliberately stateless beyond its two indexes, so replicated
partitions holding identical S shards and D copies produce identical output.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.events import EdgeEvent
from repro.core.params import DetectionParams
from repro.core.recommendation import Recommendation
from repro.graph.dynamic_index import DynamicEdgeIndex, FreshEdge
from repro.graph.intersect import k_overlap
from repro.graph.static_index import StaticFollowerIndex


@dataclass
class DiamondStats:
    """Counters the detector maintains for observability."""

    events_seen: int = 0
    triggers: int = 0
    candidates_emitted: int = 0
    #: Events whose target had fewer than k fresh sources (early exit).
    below_threshold: int = 0
    #: Fresh B's whose follower list was empty in this partition's S shard.
    empty_follower_lists: int = 0


class DiamondDetector:
    """The diamond-motif program over a (S, D) pair."""

    def __init__(
        self,
        static_index: StaticFollowerIndex,
        dynamic_index: DynamicEdgeIndex,
        params: DetectionParams | None = None,
        inserts_edges: bool = True,
    ) -> None:
        """Create a detector over existing indexes.

        Args:
            static_index: the partition's S shard (B -> sorted A's).
            dynamic_index: the partition's full D copy.
            params: k / tau configuration; defaults to production values.
            inserts_edges: when True (standalone use) the detector inserts
                each event into D itself; the engine sets this False so one
                insert feeds all co-hosted detector programs.
        """
        self.params = params or DetectionParams()
        if self.params.tau > dynamic_index.retention:
            raise ValueError(
                f"params.tau={self.params.tau} exceeds the dynamic index's "
                f"retention={dynamic_index.retention}"
            )
        self._static = static_index
        self._dynamic = dynamic_index
        self._inserts_edges = inserts_edges
        self.stats = DiamondStats()

    @property
    def name(self) -> str:
        """Detector program identifier."""
        return "diamond"

    def rebind_static(self, static_index: StaticFollowerIndex) -> None:
        """Swap in a freshly-loaded S snapshot (periodic offline reload).

        The production system recomputes the ``A -> B`` edges offline and
        "loaded into the system periodically"; swapping the reference is
        atomic under the GIL, so an engine can reload without pausing the
        event stream.  D is untouched — recent dynamic edges remain valid.
        """
        self._static = static_index

    # ------------------------------------------------------------------
    # Event path
    # ------------------------------------------------------------------

    def on_edge(self, event: EdgeEvent, now: float | None = None) -> list[Recommendation]:
        """Process one live ``B -> C`` edge; return completed-motif candidates.

        Args:
            event: the live edge; its ``created_at`` stamps the D entry.
            now: processing time used for the freshness window.  Defaults
                to the event's creation time, which is exact for in-order
                streams; queue consumers pass their arrival clock so
                late-arriving edges still see every edge created before
                them (real queues reorder).
        """
        self.stats.events_seen += 1
        if now is None:
            now = event.created_at
        if self._inserts_edges:
            self._dynamic.insert(
                event.actor, event.target, event.created_at, action=event.action
            )

        fresh = self._dynamic.fresh_sources(
            event.target, now=max(now, event.created_at), tau=self.params.tau
        )
        if len(fresh) < self.params.k:
            self.stats.below_threshold += 1
            return []

        recipients = self._audience(event.target, fresh)
        if not recipients:
            return []
        self.stats.triggers += 1
        self.stats.candidates_emitted += len(recipients)
        via = tuple(edge.source for edge in fresh)
        return [
            Recommendation(
                recipient=a,
                candidate=event.target,
                created_at=event.created_at,
                motif=self.name,
                action=event.action,
                via=via,
            )
            for a in recipients
        ]

    def current_audience(self, target: int, now: float) -> list[int]:
        """The A's who would be notified about *target* right now.

        A read-only query (no insertion) used by the polling baseline and
        by tests to compare detector state against batch ground truth.
        """
        fresh = self._dynamic.fresh_sources(target, now=now, tau=self.params.tau)
        if len(fresh) < self.params.k:
            return []
        return self._audience(target, fresh)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _audience(self, target: int, fresh: list[FreshEdge]) -> list[int]:
        """Bottom half of the diamond: A's following >= k fresh B's."""
        params = self.params
        if (
            params.max_trigger_sources is not None
            and len(fresh) > params.max_trigger_sources
        ):
            # Keep the most recent sources; fresh is in ascending-timestamp
            # order, so the tail is the newest.
            fresh = fresh[-params.max_trigger_sources :]

        follower_lists = []
        for edge in fresh:
            a_list = self._static.followers_of(edge.source)
            if len(a_list):
                follower_lists.append(a_list)
            else:
                self.stats.empty_follower_lists += 1
        if len(follower_lists) < params.k:
            return []

        recipients = k_overlap(follower_lists, params.k)
        if not recipients:
            return []

        fresh_sources = {edge.source for edge in fresh}
        kept: list[int] = []
        for a in recipients:
            if params.exclude_candidate_recipient and a == target:
                continue
            if params.exclude_existing_followers:
                # Already following C per the static snapshot, or C's newest
                # followers themselves (their follow edge is in D, not yet
                # in S) — either way a pointless notification.
                if a in fresh_sources or self._static.has_edge(a, target):
                    continue
            kept.append(a)
        return kept
