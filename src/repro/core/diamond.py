"""Online diamond-motif detection — the production algorithm of §2.

When a live ``B -> C`` edge arrives:

1. insert it into the dynamic index **D**;
2. query D for the other B's with a fresh (within ``tau``) edge to C — the
   *top half* of the diamond;
3. if at least ``k`` fresh B's point at C, look up each B's sorted follower
   list in the static index **S** and compute the **k-overlap** — every A
   following at least ``k`` of the fresh B's.  With exactly ``k`` fresh B's
   this is the plain intersection of the paper's worked example;
4. emit a raw candidate of C to each such A — boxed
   :class:`~repro.core.recommendation.Recommendation` objects on the
   per-event path, one columnar
   :class:`~repro.core.recommendation.RecommendationGroup` per trigger on
   the batched path (the k-overlap's recipient array flows straight into
   the group, unboxed).

The detector is deliberately stateless beyond its two indexes, so replicated
partitions holding identical S shards and D copies produce identical output.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.batch import EventBatch
from repro.core.events import EdgeEvent
from repro.core.params import DetectionParams
from repro.core.recommendation import (
    EMPTY_RECOMMENDATION_BATCH,
    Recommendation,
    RecommendationBatch,
    RecommendationGroup,
)
from repro.graph.dynamic_index import DynamicEdgeIndex, FreshColumns, FreshEdge
from repro.graph.intersect import k_overlap, k_overlap_arrays
from repro.graph.static_index import StaticFollowerIndex

#: Cache-miss sentinel for the batch path's follower-array memo (``None``
#: is a legitimate cached value meaning "empty follower list").
_MISSING = object()


@dataclass
class DiamondStats:
    """Counters the detector maintains for observability."""

    events_seen: int = 0
    triggers: int = 0
    candidates_emitted: int = 0
    #: Events whose target had fewer than k fresh sources (early exit).
    below_threshold: int = 0
    #: Fresh B's whose follower list was empty in this partition's S shard.
    empty_follower_lists: int = 0


class DiamondDetector:
    """The diamond-motif program over a (S, D) pair."""

    def __init__(
        self,
        static_index: StaticFollowerIndex,
        dynamic_index: DynamicEdgeIndex,
        params: DetectionParams | None = None,
        inserts_edges: bool = True,
    ) -> None:
        """Create a detector over existing indexes.

        Args:
            static_index: the partition's S shard (B -> sorted A's).
            dynamic_index: the partition's full D copy.
            params: k / tau configuration; defaults to production values.
            inserts_edges: when True (standalone use) the detector inserts
                each event into D itself; the engine sets this False so one
                insert feeds all co-hosted detector programs.
        """
        self.params = params or DetectionParams()
        if self.params.tau > dynamic_index.retention:
            raise ValueError(
                f"params.tau={self.params.tau} exceeds the dynamic index's "
                f"retention={dynamic_index.retention}"
            )
        self._static = static_index
        self._dynamic = dynamic_index
        self._inserts_edges = inserts_edges
        #: Batch-path memo of B -> zero-copy int64 view of B's follower
        #: list (None = empty).  Exact because S is immutable; invalidated
        #: when a new S snapshot is bound.
        self._follower_arrays: dict[int, np.ndarray | None] = {}
        self.stats = DiamondStats()

    @property
    def name(self) -> str:
        """Detector program identifier."""
        return "diamond"

    def rebind_static(self, static_index: StaticFollowerIndex) -> None:
        """Swap in a freshly-loaded S snapshot (periodic offline reload).

        The production system recomputes the ``A -> B`` edges offline and
        "loaded into the system periodically"; swapping the reference is
        atomic under the GIL, so an engine can reload without pausing the
        event stream.  D is untouched — recent dynamic edges remain valid.
        """
        self._static = static_index
        self._follower_arrays = {}

    # ------------------------------------------------------------------
    # Event path
    # ------------------------------------------------------------------

    def on_edge(self, event: EdgeEvent, now: float | None = None) -> list[Recommendation]:
        """Process one live ``B -> C`` edge; return completed-motif candidates.

        Args:
            event: the live edge; its ``created_at`` stamps the D entry.
            now: processing time used for the freshness window.  Defaults
                to the event's creation time, which is exact for in-order
                streams; queue consumers pass their arrival clock so
                late-arriving edges still see every edge created before
                them (real queues reorder).
        """
        self.stats.events_seen += 1
        if now is None:
            now = event.created_at
        if self._inserts_edges:
            self._dynamic.insert(
                event.actor, event.target, event.created_at, action=event.action
            )

        fresh = self._dynamic.fresh_sources(
            event.target, now=max(now, event.created_at), tau=self.params.tau
        )
        if len(fresh) < self.params.k:
            self.stats.below_threshold += 1
            return []

        recipients = self._audience(event.target, fresh)
        if not recipients:
            return []
        self.stats.triggers += 1
        self.stats.candidates_emitted += len(recipients)
        via = tuple(edge.source for edge in fresh)
        return [
            Recommendation(
                recipient=a,
                candidate=event.target,
                created_at=event.created_at,
                motif=self.name,
                action=event.action,
                via=via,
            )
            for a in recipients
        ]

    def process_batch(
        self, batch: EventBatch, now: float | None = None
    ) -> list[RecommendationBatch]:
        """Process a columnar micro-batch; one candidate batch per event.

        Emits exactly what per-event :meth:`on_edge` calls would — same
        recommendations, same statistics — while amortizing interpreter
        overhead: D is queried through one
        :meth:`~repro.graph.dynamic_index.DynamicEdgeIndex
        .fresh_sources_multi` call per distinct-target run (with the
        ``min_count=k`` hint skipping cold targets entirely), and S follower
        lookups are memoized across the batch's events.  Output stays
        columnar: each triggering event's audience is one
        :class:`~repro.core.recommendation.RecommendationGroup` wrapping
        the k-overlap's recipient array directly — no per-candidate boxing
        (iterate the batch to decode the boxed view on demand).

        When constructed with ``inserts_edges=False`` the caller owns the
        inserts and must pass batches whose targets are distinct (an engine
        run, see :meth:`EventBatch.distinct_target_runs`) with those edges
        already inserted; standalone detectors accept arbitrary batches and
        interleave the inserts themselves.
        """
        if not self._inserts_edges:
            return self._detect_run(batch, now)
        results: list[RecommendationBatch] = [None] * len(batch)  # type: ignore[list-item]
        for start, stop in batch.distinct_target_runs():
            run = batch.slice(start, stop)
            self._dynamic.insert_batch(run, distinct_targets=True)
            results[start:stop] = self._detect_run(run, now)
        return results

    def _detect_run(
        self, run: EventBatch, now: float | None
    ) -> list[RecommendationBatch]:
        """Detection over a distinct-target run whose edges are in D."""
        timestamps, _actors, targets, actions = run.columns()
        n = len(timestamps)
        stats = self.stats
        stats.events_seen += n
        params = self.params
        k = params.k
        if now is None:
            nows = timestamps
        else:
            # One C-speed clamp against the processing clock instead of a
            # per-event comparison loop.
            nows = np.maximum(run.timestamps, now).tolist()
        fresh_lists = self._dynamic.fresh_sources_multi(
            targets, nows, tau=params.tau, min_count=k, raw=True
        )
        results: list[RecommendationBatch] = []
        append = results.append
        name = self.name
        no_candidates = EMPTY_RECOMMENDATION_BATCH
        below_threshold = 0
        for i, fresh in enumerate(fresh_lists):
            if len(fresh) < k:
                below_threshold += 1
                append(no_candidates)
                continue
            target = targets[i]
            recipients = self._audience_batch(target, fresh)
            if recipients is None:
                append(no_candidates)
                continue
            stats.triggers += 1
            stats.candidates_emitted += len(recipients)
            if type(fresh) is FreshColumns:
                # The witness column rides along unboxed; the group decodes
                # it to a tuple only if someone materializes a boxed view —
                # via tuples of viral triggers span hundreds of witnesses.
                via = fresh.sources
            else:
                via = tuple(edge[1] for edge in fresh)
            append(
                RecommendationBatch(
                    (
                        RecommendationGroup(
                            recipients,
                            candidate=target,
                            created_at=timestamps[i],
                            motif=name,
                            action=actions[i],
                            via=via,
                        ),
                    )
                )
            )
        stats.below_threshold += below_threshold
        return results

    def current_audience(self, target: int, now: float) -> list[int]:
        """The A's who would be notified about *target* right now.

        A read-only query (no insertion) used by the polling baseline and
        by tests to compare detector state against batch ground truth.
        """
        fresh = self._dynamic.fresh_sources(target, now=now, tau=self.params.tau)
        if len(fresh) < self.params.k:
            return []
        return self._audience(target, fresh)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _audience(self, target: int, fresh: list[FreshEdge]) -> list[int]:
        """Bottom half of the diamond: A's following >= k fresh B's."""
        params = self.params
        if (
            params.max_trigger_sources is not None
            and len(fresh) > params.max_trigger_sources
        ):
            # Keep the most recent sources; fresh is in ascending-timestamp
            # order, so the tail is the newest.
            fresh = fresh[-params.max_trigger_sources :]

        follower_lists = []
        for edge in fresh:
            a_list = self._static.followers_of(edge.source)
            if len(a_list):
                follower_lists.append(a_list)
            else:
                self.stats.empty_follower_lists += 1
        if len(follower_lists) < params.k:
            return []

        if type(follower_lists[0]) is np.ndarray:
            # The csr S backend serves arena slices; the array kernel keeps
            # results as Python ints, identical to the packed-list path.
            recipients = k_overlap_arrays(follower_lists, params.k).tolist()
        else:
            recipients = k_overlap(follower_lists, params.k)
        if not recipients:
            return []

        fresh_sources = {edge.source for edge in fresh}
        kept: list[int] = []
        for a in recipients:
            if params.exclude_candidate_recipient and a == target:
                continue
            if params.exclude_existing_followers:
                # Already following C per the static snapshot, or C's newest
                # followers themselves (their follow edge is in D, not yet
                # in S) — either way a pointless notification.
                if a in fresh_sources or self._static.has_edge(a, target):
                    continue
            kept.append(a)
        return kept

    def _audience_batch(
        self, target: int, fresh: list[tuple[float, int, object]]
    ) -> np.ndarray | None:
        """Vectorised :meth:`_audience` for the batched path.

        Identical audience, different execution and representation: each
        fresh B's follower list is fetched as a zero-copy int64 view
        (``follower_array``, backend-neutral) and memoized on the detector
        (S is immutable until rebound, so reuse is exact), the k-overlap
        runs as one C-speed sort plus run-length threshold over the
        concatenation, and the exclusion filters apply as vectorized masks
        over the resulting recipient array.  The array is returned as-is —
        ascending, never boxed — ready to become a
        :class:`~repro.core.recommendation.RecommendationGroup` column
        (``None`` when the audience is empty).

        *fresh* is the raw representation from
        :meth:`~repro.graph.dynamic_index.DynamicEdgeIndex
        .fresh_sources_multi`: a list of stored ``(timestamp, source,
        action)`` tuples, or a :class:`~repro.graph.dynamic_index
        .FreshColumns` for ring-backed viral targets — whose source column
        is consumed with a single ``tolist`` instead of a per-edge unpack.
        """
        params = self.params
        if type(fresh) is FreshColumns:
            sources = fresh.sources_list()
        else:
            sources = [edge[1] for edge in fresh]
        if (
            params.max_trigger_sources is not None
            and len(sources) > params.max_trigger_sources
        ):
            # Keep the most recent sources; fresh is in ascending-timestamp
            # order, so the tail is the newest.
            sources = sources[-params.max_trigger_sources :]

        follower_arrays = self._follower_arrays
        static_follower_array = self._static.follower_array
        follower_lists = []
        for b in sources:
            arr = follower_arrays.get(b, _MISSING)
            if arr is _MISSING:
                # Both S backends serve a zero-copy int64 view (None when
                # empty): an arena slice for csr, a buffer view for packed.
                arr = static_follower_array(b)
                follower_arrays[b] = arr
            if arr is not None:
                follower_lists.append(arr)
            else:
                self.stats.empty_follower_lists += 1
        k = params.k
        if len(follower_lists) < k:
            return None

        recipients = k_overlap_arrays(follower_lists, k)
        if not recipients.size:
            return None

        if params.exclude_existing_followers:
            # Drop A's already following C per the static snapshot with one
            # vectorized membership probe against C's sorted follower array
            # (memoized like any other) — burst triggers produce hundreds
            # of recipients, where the per-event path's per-recipient
            # binary search dominates the whole batch.
            target_followers = follower_arrays.get(target, _MISSING)
            if target_followers is _MISSING:
                target_followers = static_follower_array(target)
                follower_arrays[target] = target_followers
            if target_followers is not None:
                positions = np.minimum(
                    np.searchsorted(target_followers, recipients),
                    len(target_followers) - 1,
                )
                recipients = recipients[target_followers[positions] != recipients]
            # C's newest followers themselves (their follow edge is in D,
            # not yet in S) are excluded too — one membership mask against
            # the small fresh-source set.
            if recipients.size and sources:
                recipients = recipients[
                    ~np.isin(
                        recipients,
                        np.fromiter(sources, dtype=np.int64, count=len(sources)),
                        assume_unique=False,
                    )
                ]
        if params.exclude_candidate_recipient and recipients.size:
            recipients = recipients[recipients != target]
        if not recipients.size:
            return None
        return recipients
