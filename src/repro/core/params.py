"""Tunable detection parameters: the paper's ``k`` and ``tau``.

"if more than k of them follow an account C within a time period tau, then
we recommend C to A (where k and tau are tunable parameters)" — k = 2 in the
worked example, k = 3 in production.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import require, require_positive

#: The paper's production setting.
PRODUCTION_K = 3

#: The worked-example setting used throughout Figure 1.
EXAMPLE_K = 2


@dataclass(frozen=True, slots=True)
class DetectionParams:
    """Configuration for one motif-detection program.

    Attributes:
        k: minimum number of distinct fresh B's that must point at the same
            C (and be followed by A) to trigger a recommendation.
        tau: freshness window in seconds — only B -> C edges created within
            the last ``tau`` seconds count toward ``k``.
        exclude_candidate_recipient: drop the degenerate recommendation of
            C to itself (C appears among its own followers' followers
            surprisingly often in real graphs).
        exclude_existing_followers: drop A's that already follow C according
            to S.  Note S is a pruned snapshot, so this check is best-effort
            — exactly as in production, where the authoritative dedup lives
            in the downstream delivery pipeline.
        max_trigger_sources: safety valve — if more than this many fresh B's
            point at C, only the ``max_trigger_sources`` most recent are
            expanded.  Caps worst-case work on ultra-viral targets; ``None``
            disables the cap.
    """

    k: int = PRODUCTION_K
    tau: float = 3600.0
    exclude_candidate_recipient: bool = True
    exclude_existing_followers: bool = True
    max_trigger_sources: int | None = None

    def __post_init__(self) -> None:
        require(self.k >= 1, f"k must be >= 1, got {self.k}")
        require_positive(self.tau, "tau")
        if self.max_trigger_sources is not None:
            require(
                self.max_trigger_sources >= self.k,
                "max_trigger_sources must be >= k or no motif can complete",
            )
