"""The detector protocol: one "program" over the graph infrastructure.

The paper separates "the partitioned graph infrastructure that maintains the
relevant data structures" from "the 'program' that performs the motif
detection", and anticipates multiple motif programs sharing the
infrastructure.  ``OnlineDetector`` is that program interface; the engine
and the partition servers drive any number of them off the same S and D.

Detectors may additionally implement the *optional* batched entry point::

    def process_batch(self, batch: EventBatch, now: float | None = None)
        -> list[RecommendationBatch] | list[list[Recommendation]]

returning one candidate collection per batch event (positionally aligned) —
either the columnar :class:`~repro.core.recommendation.RecommendationBatch`
(the native currency, preferred) or a plain candidate list, which the
engine re-columns on merge.  The
engine discovers it with ``getattr``; if any registered detector lacks it,
the engine processes the whole batch through the interleaved per-event
``on_edge`` loop instead (exact for arbitrary detectors, unamortized).
When the engine owns the inserts (``inserts_edges=False``) it only ever
passes ``process_batch`` batches with distinct targets whose edges are
already in D (see
:meth:`repro.core.batch.EventBatch.distinct_target_runs`), which is what
makes batched processing exactly equivalent to the per-event loop.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.core.events import EdgeEvent
from repro.core.recommendation import Recommendation


@runtime_checkable
class OnlineDetector(Protocol):
    """A motif-detection program driven by live edge events."""

    @property
    def name(self) -> str:
        """Stable identifier used in recommendation provenance."""
        ...

    def on_edge(
        self, event: EdgeEvent, now: float | None = None
    ) -> list[Recommendation]:
        """React to one live edge; return any completed-motif candidates.

        ``now`` is the processing time (defaults to the event's creation
        time); queue consumers pass their arrival clock so reordered
        deliveries are handled.  Implementations must be deterministic
        given (their indexes' state, the event, now) so that replicated
        partitions produce identical results.
        """
        ...
