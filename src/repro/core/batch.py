"""Columnar event batches: the amortized ingestion unit of the hot path.

The paper's production system sustains O(10^4) events/s by amortizing work
across the firehose.  A strictly per-event Python hot path pays interpreter
overhead (attribute lookups, method calls, object construction) on every
edge; :class:`EventBatch` removes that by carrying a micro-batch of edges as
parallel numpy columns — one array each for timestamp, actor (B), and
target (C), plus a compact action-code column — which flows end to end:

    stream generator -> queue consumer -> broker -> partition -> engine
                     -> DynamicEdgeIndex.insert_batch
                     -> DiamondDetector.process_batch

The storage layer continues the columnar layout at rest: the csr S backend
(:class:`~repro.graph.static_index.CsrFollowerIndex`) serves follower lists
as zero-copy slices of one int64 arena, and the ring D backend keeps hot
targets' recent edges in circular numpy columns — so a batch's arrays flow
into, through, and back out of the indexes without per-element boxing.

Batched processing is *semantics-preserving*: every layer's ``process_batch``
emits exactly the recommendations (and leaves exactly the index state) that
the per-event loop would.  The key tool for that is
:meth:`EventBatch.distinct_target_runs`, which splits a batch into maximal
prefixes of distinct targets — within such a run, inserting every edge and
then querying each event's target is indistinguishable from the interleaved
insert/query loop, because an event's freshness query only depends on its
own target's entry.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.core.events import ActionType, EdgeEvent

#: Action codes for the compact columnar action column, by enum order.
ACTIONS: tuple[ActionType, ...] = tuple(ActionType)
ACTION_CODES: dict[ActionType, int] = {a: i for i, a in enumerate(ACTIONS)}
_DEFAULT_ACTION = ActionType.FOLLOW


class EventBatch:
    """A micro-batch of live ``B -> C`` edges in columnar (numpy) layout.

    Columns (all length ``n``, aligned by position):

    * ``timestamps`` — ``float64`` creation times (``EdgeEvent.created_at``);
    * ``actors`` — ``int64`` acting accounts (the B's);
    * ``targets`` — ``int64`` acted-upon accounts (the C's);
    * ``actions`` — ``uint8`` codes into :data:`ACTIONS`.

    Event order within the batch is stream order; all batched layers preserve
    it so results are positionally aligned with the input.
    """

    __slots__ = ("timestamps", "actors", "targets", "_action_codes", "_lists")

    def __init__(
        self,
        timestamps: Sequence[float] | np.ndarray,
        actors: Sequence[int] | np.ndarray,
        targets: Sequence[int] | np.ndarray,
        actions: Sequence[ActionType] | np.ndarray | None = None,
        validate: bool = True,
    ) -> None:
        """Wrap columns (copied into numpy arrays unless already arrays).

        Args:
            timestamps: per-event creation times.
            actors: per-event acting account ids.
            targets: per-event target account ids.
            actions: per-event actions — either a ``uint8`` code array or a
                sequence of :class:`ActionType`; ``None`` means all FOLLOW.
            validate: check column alignment and id non-negativity (the
                same invariant ``EdgeEvent`` enforces per event).
        """
        self.timestamps = np.asarray(timestamps, dtype=np.float64)
        self.actors = np.asarray(actors, dtype=np.int64)
        self.targets = np.asarray(targets, dtype=np.int64)
        if actions is None:
            codes = None
        elif isinstance(actions, np.ndarray):
            codes = actions.astype(np.uint8, copy=False)
        else:
            codes = np.fromiter(
                (ACTION_CODES[a] for a in actions),
                dtype=np.uint8,
                count=len(actions),
            )
        self._action_codes = codes
        self._lists: tuple[list, list, list, list] | None = None
        if validate:
            n = len(self.timestamps)
            if len(self.actors) != n or len(self.targets) != n:
                raise ValueError(
                    f"misaligned columns: {n} timestamps, "
                    f"{len(self.actors)} actors, {len(self.targets)} targets"
                )
            if codes is not None and len(codes) != n:
                raise ValueError(
                    f"misaligned columns: {n} timestamps, {len(codes)} actions"
                )
            if n and (self.actors.min() < 0 or self.targets.min() < 0):
                raise ValueError("user ids must be non-negative")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_events(cls, events: Sequence[EdgeEvent]) -> "EventBatch":
        """Build a batch from already-validated :class:`EdgeEvent` objects."""
        timestamps = [event.created_at for event in events]
        actors = [event.actor for event in events]
        targets = [event.target for event in events]
        actions = [event.action for event in events]
        batch = cls.__new__(cls)
        batch.timestamps = np.asarray(timestamps, dtype=np.float64)
        batch.actors = np.asarray(actors, dtype=np.int64)
        batch.targets = np.asarray(targets, dtype=np.int64)
        batch._action_codes = None
        # The row lists are exactly what columns() would rebuild — keep them.
        batch._lists = (timestamps, actors, targets, actions)
        return batch

    @classmethod
    def empty(cls) -> "EventBatch":
        """A zero-length batch."""
        return cls((), (), (), validate=False)

    # ------------------------------------------------------------------
    # Views and conversions
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.timestamps)

    @property
    def actions(self) -> np.ndarray:
        """The ``uint8`` action-code column (materialized on demand)."""
        codes = self._action_codes
        if codes is None:
            if self._lists is not None:
                actions = self._lists[3]
                codes = np.fromiter(
                    (ACTION_CODES[a] for a in actions),
                    dtype=np.uint8,
                    count=len(actions),
                )
            else:
                codes = np.zeros(len(self.timestamps), dtype=np.uint8)
            self._action_codes = codes
        return codes

    def columns(self) -> tuple[list[float], list[int], list[int], list[ActionType]]:
        """The batch as plain-Python row lists, decoded and cached.

        The deque entries of :class:`~repro.graph.dynamic_index
        .DynamicEdgeIndex` hold boxed Python values, so the ingestion inner
        loops run over lists (one C-speed ``tolist`` per column) rather than
        paying a numpy scalar box per element.
        """
        lists = self._lists
        if lists is None:
            timestamps = self.timestamps.tolist()
            actors = self.actors.tolist()
            targets = self.targets.tolist()
            codes = self._action_codes
            if codes is None or not codes.any():
                actions = [_DEFAULT_ACTION] * len(timestamps)
            else:
                actions = [ACTIONS[code] for code in codes.tolist()]
            lists = self._lists = (timestamps, actors, targets, actions)
        return lists

    def to_events(self) -> list[EdgeEvent]:
        """Reconstruct the batch as :class:`EdgeEvent` objects, in order."""
        timestamps, actors, targets, actions = self.columns()
        return [
            EdgeEvent(t, a, c, action)
            for t, a, c, action in zip(timestamps, actors, targets, actions)
        ]

    def slice(self, start: int, stop: int) -> "EventBatch":
        """A zero-copy view of rows ``[start:stop)``."""
        view = EventBatch.__new__(EventBatch)
        view.timestamps = self.timestamps[start:stop]
        view.actors = self.actors[start:stop]
        view.targets = self.targets[start:stop]
        codes = self._action_codes
        view._action_codes = None if codes is None else codes[start:stop]
        lists = self._lists
        view._lists = (
            None
            if lists is None
            else tuple(column[start:stop] for column in lists)
        )
        return view

    def distinct_target_runs(self) -> list[tuple[int, int]]:
        """Split into maximal ``[start, stop)`` runs of distinct targets.

        Within a run no target repeats, so bulk-inserting the run and then
        evaluating each event's freshness query is exactly equivalent to the
        per-event insert/query interleaving: an event's query reads only its
        own target's D entry, which no later event in the run touches.
        """
        n = len(self.timestamps)
        if n == 0:
            return []
        targets = self.columns()[2]
        # Common case: no repeated target at all — one hash pass over the
        # cached row list beats sort-based uniqueness (np.unique) by an
        # order of magnitude at micro-batch sizes.
        if len(set(targets)) == n:
            return [(0, n)]
        runs: list[tuple[int, int]] = []
        seen: set[int] = set()
        add = seen.add
        start = 0
        for i, c in enumerate(targets):
            if c in seen:
                runs.append((start, i))
                start = i
                seen.clear()
            add(c)
        runs.append((start, len(targets)))
        return runs


def iter_event_batches(
    events: Iterable[EdgeEvent], batch_size: int
) -> Iterator[EventBatch]:
    """Chunk an event sequence into :class:`EventBatch` micro-batches."""
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    chunk: list[EdgeEvent] = []
    for event in events:
        chunk.append(event)
        if len(chunk) >= batch_size:
            yield EventBatch.from_events(chunk)
            chunk = []
    if chunk:
        yield EventBatch.from_events(chunk)
