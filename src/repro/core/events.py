"""Live user-action events consumed by the detection system.

The paper's running example uses follows, but notes the idea "applies to
recommending content as well, based on user actions such as retweets,
favorites, etc."  ``EdgeEvent`` therefore carries an :class:`ActionType`;
a follow event's target is an account, a retweet/favorite event's target is
a tweet id — either way the detection algorithm sees a ``B -> C`` edge.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.graph.ids import UserId


class ActionType(enum.Enum):
    """The kind of user action that created a dynamic edge."""

    FOLLOW = "follow"
    RETWEET = "retweet"
    FAVORITE = "favorite"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, slots=True, order=True)
class EdgeEvent:
    """A live ``B -> C`` action event from the message queue.

    Attributes:
        created_at: wall-clock second the action happened at the source.
        actor: the acting account (a ``B`` in the paper's notation).
        target: the account or item acted upon (a ``C``).
        action: what kind of action created the edge.
    """

    created_at: float
    actor: UserId
    target: UserId
    action: ActionType = field(default=ActionType.FOLLOW, compare=False)

    def __post_init__(self) -> None:
        if self.actor < 0 or self.target < 0:
            raise ValueError(f"user ids must be non-negative, got {self!r}")
