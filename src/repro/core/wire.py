"""Columnar wire codecs for cross-process transports.

When partitions (or delivery shards) move into worker processes, batches
must cross a ``multiprocessing`` queue.  Pickling the boxed object graph —
one :class:`~repro.core.events.EdgeEvent` or
:class:`~repro.core.recommendation.Recommendation` per element — would
reintroduce exactly the per-item cost the columnar hot path removed, so
the wire format is the columns themselves.

Event batches serialize as their four flat arrays.  Recommendation
replies are *flattened before pickling*: a burst batch can emit tens of
thousands of small groups, and pickling one tuple (with two tiny numpy
arrays) per group costs more than the detection did — so the codec packs
every group's recipients into **one** concatenated ``int64`` column, the
witness columns into another, and the per-group scalars (candidate,
creation time, action code, interned motif id) into parallel arrays.  A
partition's whole reply is then ~ten array pickles regardless of group
count, and the decoder rebuilds the groups as zero-copy slices of the
flat columns.

The codecs are intentionally dumb tuples (pickled by the queue machinery):
no versioning, no schema negotiation — both endpoints are the same build
of this package inside one process tree.

The second half of this module is the *slab frame* codec used by the
shared-memory transports (:mod:`repro.cluster.shm`): the same flat
columns, but written directly into a shm ring slot instead of pickled.
A frame is a 32-byte header (kind, column/blob counts, optional ``now``
timestamp, latency, one integer ``aux``), a column descriptor table
(dtype code + length each), a blob-length table, the blob bytes, then
each column's raw bytes 8-aligned.  ``read_frame(..., copy=False)``
returns columns as **zero-copy views of the slot itself** — valid only
until the ring slot is released — while ``copy=True`` performs one bulk
memcpy and then slices views of the private copy.
"""

from __future__ import annotations

import numpy as np

from repro.core.batch import ACTION_CODES, ACTIONS, EventBatch
from repro.core.recommendation import (
    EMPTY_RECOMMENDATION_BATCH,
    RecommendationBatch,
    RecommendationGroup,
)

_EMPTY_INT64 = np.empty(0, dtype=np.int64)

#: One serialized EventBatch: (timestamps, actors, targets, action_codes).
EventBatchWire = tuple

#: One serialized group table — see :func:`_encode_group_table`.
GroupTableWire = tuple


def encode_event_batch(batch: EventBatch) -> EventBatchWire:
    """The batch as its flat numpy columns (never boxed events)."""
    return (batch.timestamps, batch.actors, batch.targets, batch.actions)


def decode_event_batch(payload: EventBatchWire) -> EventBatch:
    """Re-wrap wire columns as an :class:`EventBatch` (no re-validation).

    The sender validated at construction time; ids and alignment survive a
    queue hop bit for bit.
    """
    timestamps, actors, targets, actions = payload
    return EventBatch(timestamps, actors, targets, actions, validate=False)


def _encode_group_table(groups: list[RecommendationGroup]) -> GroupTableWire:
    """Flatten *groups* into parallel per-group columns.

    Layout: ``(sizes, recipients, candidates, created_at, action_codes,
    motif_codes, motif_names, via_sizes, via_values)`` where ``recipients``
    (and ``via_values``) are the concatenation of every group's column in
    order, sliced back apart by ``sizes`` (``via_sizes``) on decode.
    Motif strings are interned per payload (``motif_names[motif_codes[i]]``).
    """
    n = len(groups)
    sizes = np.fromiter((len(g) for g in groups), np.int64, n)
    recipients = (
        np.concatenate([g.recipients for g in groups]) if n else _EMPTY_INT64
    )
    candidates = np.fromiter((g.candidate for g in groups), np.int64, n)
    created_at = np.fromiter((g.created_at for g in groups), np.float64, n)
    action_codes = np.fromiter(
        (ACTION_CODES[g.action] for g in groups), np.uint8, n
    )
    motif_names: list[str] = []
    motif_index: dict[str, int] = {}
    motif_codes = np.empty(n, np.uint16)
    via_sizes = np.empty(n, np.int64)
    via_parts: list[np.ndarray] = []
    for i, group in enumerate(groups):
        motif = group.motif
        code = motif_index.get(motif)
        if code is None:
            code = motif_index[motif] = len(motif_names)
            motif_names.append(motif)
        motif_codes[i] = code
        via = group._via  # tuple or ndarray; both convert without boxing
        if type(via) is not np.ndarray:
            via = np.asarray(via, dtype=np.int64)
        via_sizes[i] = len(via)
        if len(via):
            via_parts.append(via)
    via_values = np.concatenate(via_parts) if via_parts else _EMPTY_INT64
    return (
        sizes,
        recipients,
        candidates,
        created_at,
        action_codes,
        motif_codes,
        motif_names,
        via_sizes,
        via_values,
    )


def _decode_group_table(payload: GroupTableWire) -> list[RecommendationGroup]:
    """Invert :func:`_encode_group_table` (groups slice the flat columns)."""
    (
        sizes,
        recipients,
        candidates,
        created_at,
        action_codes,
        motif_codes,
        motif_names,
        via_sizes,
        via_values,
    ) = payload
    groups: list[RecommendationGroup] = []
    offset = 0
    via_offset = 0
    for size, candidate, created, action_code, motif_code, via_size in zip(
        sizes.tolist(),
        candidates.tolist(),
        created_at.tolist(),
        action_codes.tolist(),
        motif_codes.tolist(),
        via_sizes.tolist(),
    ):
        groups.append(
            RecommendationGroup(
                recipients[offset:offset + size],
                candidate,
                created,
                motif=motif_names[motif_code],
                action=ACTIONS[action_code],
                via=via_values[via_offset:via_offset + via_size],
            )
        )
        offset += size
        via_offset += via_size
    return groups


def encode_recommendation_batch(batch: RecommendationBatch) -> GroupTableWire:
    """A columnar candidate batch as one flattened group table."""
    return _encode_group_table(batch.groups)


def decode_recommendation_batch(payload: GroupTableWire) -> RecommendationBatch:
    """Invert :func:`encode_recommendation_batch` (empties alias)."""
    groups = _decode_group_table(payload)
    if not groups:
        return EMPTY_RECOMMENDATION_BATCH
    return RecommendationBatch(groups)


def encode_grouped(grouped: list[RecommendationBatch]) -> tuple:
    """A partition's per-event gather reply, positionally aligned.

    One shared group table for the whole reply plus a per-event group
    count — the pickle cost is a handful of arrays however many events
    (or triggers) the batch carried.
    """
    counts = np.fromiter(
        (len(batch.groups) for batch in grouped), np.int64, len(grouped)
    )
    all_groups = [g for batch in grouped for g in batch.groups]
    return (counts, _encode_group_table(all_groups))


def decode_grouped(payload: tuple) -> list[RecommendationBatch]:
    """Invert :func:`encode_grouped`."""
    counts, table = payload
    groups = _decode_group_table(table)
    out: list[RecommendationBatch] = []
    offset = 0
    for count in counts.tolist():
        if count == 0:
            out.append(EMPTY_RECOMMENDATION_BATCH)
        else:
            out.append(RecommendationBatch(groups[offset:offset + count]))
        offset += count
    return out


# ----------------------------------------------------------------------
# Slab frames (shared-memory ring slots)
# ----------------------------------------------------------------------

#: Frame kinds.  0 is deliberately invalid: a zeroed slot can never be
#: mistaken for a committed frame.
FRAME_PICKLE = 1  #: marker: the real payload follows on the mp queue
FRAME_EVENT_BATCH = 2  #: request: one columnar EventBatch (+ now)
FRAME_GROUPED = 3  #: reply: a partition's grouped batch answer
FRAME_LOST = 4  #: reply: the partition lost the batch (all replicas down)
FRAME_REC_BATCH = 5  #: request: one RecommendationBatch group table (+ now)
FRAME_NOTIFICATIONS = 6  #: reply: delivered notifications + funnel stats

#: Every dtype a frame column may carry; a column's descriptor stores its
#: index here.  Order is wire format — append only.
_FRAME_DTYPES = (np.int64, np.float64, np.uint8, np.uint16, np.uint64)
_FRAME_DTYPE_CODES = {np.dtype(d): i for i, d in enumerate(_FRAME_DTYPES)}

_FRAME_HEADER_BYTES = 32
_COL_DESC_BYTES = 16


def _align8(n: int) -> int:
    return (n + 7) & ~7


def _pack_strings(strings) -> bytes:
    """Interned-string table as one blob (no string may be empty)."""
    return "\x00".join(strings).encode("utf-8")


def _unpack_strings(blob: bytes) -> list[str]:
    if not blob:
        return []
    return blob.decode("utf-8").split("\x00")


def write_frame(
    mem: np.ndarray,
    kind: int,
    cols: tuple = (),
    blobs: tuple = (),
    now: float | None = None,
    latency: float = 0.0,
    aux: int = 0,
) -> int | None:
    """Encode one frame into *mem* (a ``uint8`` slot view).

    Returns the frame's byte length, or **None when the frame does not
    fit** — the caller then falls back to the pickle wire (a
    ``FRAME_PICKLE`` marker always fits: it is header-only).  Nothing is
    written on overflow.
    """
    ncols, nblobs = len(cols), len(blobs)
    tables = _FRAME_HEADER_BYTES + _COL_DESC_BYTES * ncols + 8 * nblobs
    offset = tables
    for blob in blobs:
        offset += len(blob)
    offset = _align8(offset)
    col_offsets = []
    for col in cols:
        col_offsets.append(offset)
        offset = _align8(offset + col.nbytes)
    if offset > len(mem):
        return None
    mem[0] = kind
    mem[1] = ncols
    mem[2] = nblobs
    mem[3] = 0 if now is None else 1
    mem[8:16].view(np.float64)[0] = 0.0 if now is None else now
    mem[16:24].view(np.float64)[0] = latency
    mem[24:32].view(np.int64)[0] = aux
    for i, col in enumerate(cols):
        base = _FRAME_HEADER_BYTES + _COL_DESC_BYTES * i
        mem[base] = _FRAME_DTYPE_CODES[col.dtype]
        mem[base + 8:base + 16].view(np.int64)[0] = len(col)
    lengths_base = _FRAME_HEADER_BYTES + _COL_DESC_BYTES * ncols
    blob_offset = tables
    for j, blob in enumerate(blobs):
        mem[lengths_base + 8 * j:lengths_base + 8 * (j + 1)].view(
            np.int64
        )[0] = len(blob)
        if blob:
            mem[blob_offset:blob_offset + len(blob)] = np.frombuffer(
                blob, np.uint8
            )
        blob_offset += len(blob)
    for col, col_offset in zip(cols, col_offsets):
        if len(col):
            mem[col_offset:col_offset + col.nbytes].view(col.dtype)[:] = col
    return offset


def read_frame(
    mem: np.ndarray, copy: bool = False
) -> tuple[int, list[np.ndarray], list[bytes], float | None, float, int]:
    """Decode one frame: ``(kind, cols, blobs, now, latency, aux)``.

    With ``copy=False`` the columns are views **into the slot** — they
    (and everything built zero-copy on top) die when the ring slot is
    released.  ``copy=True`` does one bulk memcpy of the frame first, so
    the returned columns own their storage.
    """
    if copy:
        mem = mem.copy()
    kind = int(mem[0])
    ncols = int(mem[1])
    nblobs = int(mem[2])
    now = float(mem[8:16].view(np.float64)[0]) if mem[3] & 1 else None
    latency = float(mem[16:24].view(np.float64)[0])
    aux = int(mem[24:32].view(np.int64)[0])
    descriptors = []
    for i in range(ncols):
        base = _FRAME_HEADER_BYTES + _COL_DESC_BYTES * i
        descriptors.append(
            (
                _FRAME_DTYPES[int(mem[base])],
                int(mem[base + 8:base + 16].view(np.int64)[0]),
            )
        )
    lengths_base = _FRAME_HEADER_BYTES + _COL_DESC_BYTES * ncols
    offset = lengths_base + 8 * nblobs
    blobs = []
    for j in range(nblobs):
        blob_len = int(
            mem[lengths_base + 8 * j:lengths_base + 8 * (j + 1)].view(
                np.int64
            )[0]
        )
        blobs.append(mem[offset:offset + blob_len].tobytes())
        offset += blob_len
    offset = _align8(offset)
    cols = []
    for dtype, length in descriptors:
        nbytes = length * np.dtype(dtype).itemsize
        cols.append(mem[offset:offset + nbytes].view(dtype))
        offset = _align8(offset + nbytes)
    return kind, cols, blobs, now, latency, aux


# --- typed frames over the generic codec -------------------------------


def frame_event_batch(
    mem: np.ndarray, payload: EventBatchWire, now: float | None
) -> int | None:
    """An encoded event batch as a request frame (None on overflow)."""
    return write_frame(mem, FRAME_EVENT_BATCH, cols=payload, now=now)


def event_batch_from_frame(cols: list[np.ndarray]) -> EventBatch:
    """Re-wrap frame columns as an :class:`EventBatch` (no copy)."""
    return decode_event_batch(tuple(cols))


def frame_grouped(mem: np.ndarray, payload: tuple, latency: float) -> int | None:
    """An :func:`encode_grouped` reply as a frame (None on overflow)."""
    counts, table = payload
    (
        sizes,
        recipients,
        candidates,
        created_at,
        action_codes,
        motif_codes,
        motif_names,
        via_sizes,
        via_values,
    ) = table
    return write_frame(
        mem,
        FRAME_GROUPED,
        cols=(
            counts,
            sizes,
            recipients,
            candidates,
            created_at,
            action_codes,
            motif_codes,
            via_sizes,
            via_values,
        ),
        blobs=(_pack_strings(motif_names),),
        latency=latency,
    )


def grouped_payload_from_frame(
    cols: list[np.ndarray], blobs: list[bytes]
) -> tuple:
    """Invert :func:`frame_grouped` back to an :func:`encode_grouped` tuple."""
    (
        counts,
        sizes,
        recipients,
        candidates,
        created_at,
        action_codes,
        motif_codes,
        via_sizes,
        via_values,
    ) = cols
    table = (
        sizes,
        recipients,
        candidates,
        created_at,
        action_codes,
        motif_codes,
        _unpack_strings(blobs[0]),
        via_sizes,
        via_values,
    )
    return (counts, table)


def frame_recommendation_batch(
    mem: np.ndarray, payload: GroupTableWire, now: float
) -> int | None:
    """An encoded recommendation batch as a request frame."""
    (
        sizes,
        recipients,
        candidates,
        created_at,
        action_codes,
        motif_codes,
        motif_names,
        via_sizes,
        via_values,
    ) = payload
    return write_frame(
        mem,
        FRAME_REC_BATCH,
        cols=(
            sizes,
            recipients,
            candidates,
            created_at,
            action_codes,
            motif_codes,
            via_sizes,
            via_values,
        ),
        blobs=(_pack_strings(motif_names),),
        now=now,
    )


def recommendation_batch_from_frame(
    cols: list[np.ndarray], blobs: list[bytes]
) -> RecommendationBatch:
    """Invert :func:`frame_recommendation_batch`."""
    (
        sizes,
        recipients,
        candidates,
        created_at,
        action_codes,
        motif_codes,
        via_sizes,
        via_values,
    ) = cols
    return decode_recommendation_batch(
        (
            sizes,
            recipients,
            candidates,
            created_at,
            action_codes,
            motif_codes,
            _unpack_strings(blobs[0]),
            via_sizes,
            via_values,
        )
    )


def frame_notifications(
    mem: np.ndarray,
    notifications: list,
    stats: tuple[dict[str, int], int],
    delivered_at: float,
) -> int | None:
    """Delivered push notifications + piggybacked funnel stats as a frame.

    Every notification in one ``offer_batch`` reply shares its delivery
    time (the funnel's ``now``), so ``delivered_at`` rides in the header
    rather than a column.  ``stats`` is the shard's
    ``(funnel stages, delivered_total)`` pair; the stage table travels as
    an interned key blob plus an ``int64`` count column, and
    ``delivered_total`` as the header's ``aux``.
    """
    stages, delivered_total = stats
    n = len(notifications)
    recipients = np.fromiter(
        (p.recommendation.recipient for p in notifications), np.int64, n
    )
    candidates = np.fromiter(
        (p.recommendation.candidate for p in notifications), np.int64, n
    )
    created_at = np.fromiter(
        (p.recommendation.created_at for p in notifications), np.float64, n
    )
    action_codes = np.fromiter(
        (ACTION_CODES[p.recommendation.action] for p in notifications),
        np.uint8,
        n,
    )
    motif_names: list[str] = []
    motif_index: dict[str, int] = {}
    motif_codes = np.empty(n, np.uint16)
    via_sizes = np.empty(n, np.int64)
    via_parts: list[tuple] = []
    for i, notification in enumerate(notifications):
        rec = notification.recommendation
        code = motif_index.get(rec.motif)
        if code is None:
            code = motif_index[rec.motif] = len(motif_names)
            motif_names.append(rec.motif)
        motif_codes[i] = code
        via_sizes[i] = len(rec.via)
        if rec.via:
            via_parts.append(rec.via)
    via_values = (
        np.fromiter(
            (v for via in via_parts for v in via),
            np.int64,
            int(via_sizes.sum()),
        )
        if via_parts
        else _EMPTY_INT64
    )
    stage_counts = np.fromiter(stages.values(), np.int64, len(stages))
    return write_frame(
        mem,
        FRAME_NOTIFICATIONS,
        cols=(
            recipients,
            candidates,
            created_at,
            action_codes,
            motif_codes,
            via_sizes,
            via_values,
            stage_counts,
        ),
        blobs=(
            _pack_strings(motif_names),
            _pack_strings(list(stages.keys())),
        ),
        now=delivered_at,
        aux=delivered_total,
    )


def notifications_from_frame(
    cols: list[np.ndarray],
    blobs: list[bytes],
    delivered_at: float,
    delivered_total: int,
) -> tuple[list, tuple[dict[str, int], int]]:
    """Invert :func:`frame_notifications`: boxed survivors + shard stats."""
    from repro.core.recommendation import Recommendation
    from repro.delivery.notifier import PushNotification

    (
        recipients,
        candidates,
        created_at,
        action_codes,
        motif_codes,
        via_sizes,
        via_values,
        stage_counts,
    ) = cols
    motif_names = _unpack_strings(blobs[0])
    stage_keys = _unpack_strings(blobs[1])
    notifications = []
    via_offset = 0
    via_list = via_values.tolist()
    for recipient, candidate, created, action_code, motif_code, via_size in zip(
        recipients.tolist(),
        candidates.tolist(),
        created_at.tolist(),
        action_codes.tolist(),
        motif_codes.tolist(),
        via_sizes.tolist(),
    ):
        notifications.append(
            PushNotification(
                Recommendation(
                    recipient=recipient,
                    candidate=candidate,
                    created_at=created,
                    motif=motif_names[motif_code],
                    action=ACTIONS[action_code],
                    via=tuple(via_list[via_offset:via_offset + via_size]),
                ),
                delivered_at=delivered_at,
            )
        )
        via_offset += via_size
    stats = (dict(zip(stage_keys, stage_counts.tolist())), delivered_total)
    return notifications, stats
