"""Columnar wire codecs for cross-process transports.

When partitions (or delivery shards) move into worker processes, batches
must cross a ``multiprocessing`` queue.  Pickling the boxed object graph —
one :class:`~repro.core.events.EdgeEvent` or
:class:`~repro.core.recommendation.Recommendation` per element — would
reintroduce exactly the per-item cost the columnar hot path removed, so
the wire format is the columns themselves.

Event batches serialize as their four flat arrays.  Recommendation
replies are *flattened before pickling*: a burst batch can emit tens of
thousands of small groups, and pickling one tuple (with two tiny numpy
arrays) per group costs more than the detection did — so the codec packs
every group's recipients into **one** concatenated ``int64`` column, the
witness columns into another, and the per-group scalars (candidate,
creation time, action code, interned motif id) into parallel arrays.  A
partition's whole reply is then ~ten array pickles regardless of group
count, and the decoder rebuilds the groups as zero-copy slices of the
flat columns.

The codecs are intentionally dumb tuples (pickled by the queue machinery):
no versioning, no schema negotiation — both endpoints are the same build
of this package inside one process tree.
"""

from __future__ import annotations

import numpy as np

from repro.core.batch import ACTION_CODES, ACTIONS, EventBatch
from repro.core.recommendation import (
    EMPTY_RECOMMENDATION_BATCH,
    RecommendationBatch,
    RecommendationGroup,
)

_EMPTY_INT64 = np.empty(0, dtype=np.int64)

#: One serialized EventBatch: (timestamps, actors, targets, action_codes).
EventBatchWire = tuple

#: One serialized group table — see :func:`_encode_group_table`.
GroupTableWire = tuple


def encode_event_batch(batch: EventBatch) -> EventBatchWire:
    """The batch as its flat numpy columns (never boxed events)."""
    return (batch.timestamps, batch.actors, batch.targets, batch.actions)


def decode_event_batch(payload: EventBatchWire) -> EventBatch:
    """Re-wrap wire columns as an :class:`EventBatch` (no re-validation).

    The sender validated at construction time; ids and alignment survive a
    queue hop bit for bit.
    """
    timestamps, actors, targets, actions = payload
    return EventBatch(timestamps, actors, targets, actions, validate=False)


def _encode_group_table(groups: list[RecommendationGroup]) -> GroupTableWire:
    """Flatten *groups* into parallel per-group columns.

    Layout: ``(sizes, recipients, candidates, created_at, action_codes,
    motif_codes, motif_names, via_sizes, via_values)`` where ``recipients``
    (and ``via_values``) are the concatenation of every group's column in
    order, sliced back apart by ``sizes`` (``via_sizes``) on decode.
    Motif strings are interned per payload (``motif_names[motif_codes[i]]``).
    """
    n = len(groups)
    sizes = np.fromiter((len(g) for g in groups), np.int64, n)
    recipients = (
        np.concatenate([g.recipients for g in groups]) if n else _EMPTY_INT64
    )
    candidates = np.fromiter((g.candidate for g in groups), np.int64, n)
    created_at = np.fromiter((g.created_at for g in groups), np.float64, n)
    action_codes = np.fromiter(
        (ACTION_CODES[g.action] for g in groups), np.uint8, n
    )
    motif_names: list[str] = []
    motif_index: dict[str, int] = {}
    motif_codes = np.empty(n, np.uint16)
    via_sizes = np.empty(n, np.int64)
    via_parts: list[np.ndarray] = []
    for i, group in enumerate(groups):
        motif = group.motif
        code = motif_index.get(motif)
        if code is None:
            code = motif_index[motif] = len(motif_names)
            motif_names.append(motif)
        motif_codes[i] = code
        via = group._via  # tuple or ndarray; both convert without boxing
        if type(via) is not np.ndarray:
            via = np.asarray(via, dtype=np.int64)
        via_sizes[i] = len(via)
        if len(via):
            via_parts.append(via)
    via_values = np.concatenate(via_parts) if via_parts else _EMPTY_INT64
    return (
        sizes,
        recipients,
        candidates,
        created_at,
        action_codes,
        motif_codes,
        motif_names,
        via_sizes,
        via_values,
    )


def _decode_group_table(payload: GroupTableWire) -> list[RecommendationGroup]:
    """Invert :func:`_encode_group_table` (groups slice the flat columns)."""
    (
        sizes,
        recipients,
        candidates,
        created_at,
        action_codes,
        motif_codes,
        motif_names,
        via_sizes,
        via_values,
    ) = payload
    groups: list[RecommendationGroup] = []
    offset = 0
    via_offset = 0
    for size, candidate, created, action_code, motif_code, via_size in zip(
        sizes.tolist(),
        candidates.tolist(),
        created_at.tolist(),
        action_codes.tolist(),
        motif_codes.tolist(),
        via_sizes.tolist(),
    ):
        groups.append(
            RecommendationGroup(
                recipients[offset:offset + size],
                candidate,
                created,
                motif=motif_names[motif_code],
                action=ACTIONS[action_code],
                via=via_values[via_offset:via_offset + via_size],
            )
        )
        offset += size
        via_offset += via_size
    return groups


def encode_recommendation_batch(batch: RecommendationBatch) -> GroupTableWire:
    """A columnar candidate batch as one flattened group table."""
    return _encode_group_table(batch.groups)


def decode_recommendation_batch(payload: GroupTableWire) -> RecommendationBatch:
    """Invert :func:`encode_recommendation_batch` (empties alias)."""
    groups = _decode_group_table(payload)
    if not groups:
        return EMPTY_RECOMMENDATION_BATCH
    return RecommendationBatch(groups)


def encode_grouped(grouped: list[RecommendationBatch]) -> tuple:
    """A partition's per-event gather reply, positionally aligned.

    One shared group table for the whole reply plus a per-event group
    count — the pickle cost is a handful of arrays however many events
    (or triggers) the batch carried.
    """
    counts = np.fromiter(
        (len(batch.groups) for batch in grouped), np.int64, len(grouped)
    )
    all_groups = [g for batch in grouped for g in batch.groups]
    return (counts, _encode_group_table(all_groups))


def decode_grouped(payload: tuple) -> list[RecommendationBatch]:
    """Invert :func:`encode_grouped`."""
    counts, table = payload
    groups = _decode_group_table(table)
    out: list[RecommendationBatch] = []
    offset = 0
    for count in counts.tolist():
        if count == 0:
            out.append(EMPTY_RECOMMENDATION_BATCH)
        else:
            out.append(RecommendationBatch(groups[offset:offset + count]))
        offset += count
    return out
