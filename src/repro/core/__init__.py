"""The paper's primary contribution: online diamond-motif detection.

Given the static follower index **S** and the dynamic recent-edge index
**D**, :class:`~repro.core.diamond.DiamondDetector` reacts to each live
``B -> C`` edge by completing the "diamond" motif: find the other fresh B's
pointing at C (top half), then intersect their follower lists (bottom half)
to obtain the A's who should be told about C.

:class:`~repro.core.engine.MotifEngine` wires S + D + one or more detectors
into a single-machine serving unit; the distributed version lives in
:mod:`repro.cluster`.
"""

from repro.core.events import ActionType, EdgeEvent
from repro.core.batch import EventBatch, iter_event_batches
from repro.core.params import DetectionParams
from repro.core.recommendation import (
    EMPTY_RECOMMENDATION_BATCH,
    CandidateColumns,
    Recommendation,
    RecommendationBatch,
    RecommendationGroup,
)
from repro.core.detector import OnlineDetector
from repro.core.diamond import DiamondDetector
from repro.core.engine import EngineStats, MotifEngine
from repro.core.spree import SpreeAlert, SpreeDetector

__all__ = [
    "ActionType",
    "EdgeEvent",
    "EventBatch",
    "iter_event_batches",
    "DetectionParams",
    "CandidateColumns",
    "Recommendation",
    "RecommendationBatch",
    "RecommendationGroup",
    "EMPTY_RECOMMENDATION_BATCH",
    "OnlineDetector",
    "DiamondDetector",
    "EngineStats",
    "MotifEngine",
    "SpreeAlert",
    "SpreeDetector",
]
