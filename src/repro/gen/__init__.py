"""Synthetic workload generators.

The paper's system runs against the Twitter follow graph (O(10^8) vertices,
O(10^10) edges) and the live firehose of follow/retweet events — neither of
which is available outside Twitter.  This package builds the closest
laptop-scale equivalents:

* :func:`~repro.gen.graph_gen.generate_follow_graph` — power-law follow
  graphs with Twitter-like in-degree skew (a few celebrity hubs, a long tail
  of ordinary accounts);
* :func:`~repro.gen.stream_gen.generate_event_stream` — temporally-correlated
  edge streams: bursts of attention toward trending targets over background
  noise, which is exactly the signal the diamond motif detects;
* :mod:`~repro.gen.scenarios` — canned workloads (celebrity join, breaking
  news, quiet day) reused by examples, tests, and benchmarks.
"""

from repro.gen.zipf import ZipfSampler, power_law_out_degrees
from repro.gen.graph_gen import (
    TwitterGraphConfig,
    generate_follow_graph,
    generate_follow_graph_chunked,
)
from repro.gen.stream_gen import (
    BurstSpec,
    StreamConfig,
    diurnal_rate_factor,
    generate_event_batch,
    generate_event_stream,
)
from repro.gen.scenarios import Scenario, breaking_news, celebrity_join, quiet_day

__all__ = [
    "ZipfSampler",
    "power_law_out_degrees",
    "TwitterGraphConfig",
    "generate_follow_graph",
    "generate_follow_graph_chunked",
    "BurstSpec",
    "StreamConfig",
    "diurnal_rate_factor",
    "generate_event_batch",
    "generate_event_stream",
    "Scenario",
    "breaking_news",
    "celebrity_join",
    "quiet_day",
]
