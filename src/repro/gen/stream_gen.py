"""Temporally-correlated live-edge streams.

The diamond motif fires when several of a user's followings act on the same
target within a short window — i.e. when edge creations are *temporally
correlated*.  The stream generator produces exactly that signal:

* a Poisson **background** of uncorrelated edges (random actor, Zipf target)
  that mostly never completes motifs, modelling organic churn; and
* **bursts**: a trending target C attracts edges from many popular actors
  (the B's that real users follow) within a tight window, modelling the
  "what's hot" dynamics the production system monetises.

Event timestamps are emitted in nondecreasing order, like a message queue
that preserves rough arrival order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.events import ActionType, EdgeEvent
from repro.gen.zipf import ZipfSampler
from repro.util.rng import make_rng
from repro.util.validation import require, require_non_negative, require_positive

if TYPE_CHECKING:
    from repro.core.batch import EventBatch


@dataclass(frozen=True)
class BurstSpec:
    """One burst of correlated attention toward a single target.

    Attributes:
        target: the C that trends.
        start: burst start time (seconds).
        duration: seconds over which the burst's edges arrive.
        num_actors: how many distinct actors create an edge to the target.
        actor_popularity_bias: Zipf exponent for sampling the actors; high
            values pick celebrity B's (whose follower lists are long and
            heavily co-followed), low values pick random accounts.
        action: the action type of the burst's edges.
    """

    target: int
    start: float
    duration: float
    num_actors: int
    actor_popularity_bias: float = 1.2
    action: ActionType = ActionType.FOLLOW

    def __post_init__(self) -> None:
        require_non_negative(self.start, "start")
        require_positive(self.duration, "duration")
        require_positive(self.num_actors, "num_actors")


@dataclass(frozen=True)
class StreamConfig:
    """Parameters of a generated event stream.

    Attributes:
        num_users: id space of actors/targets (match the graph config).
        duration: stream length in seconds.
        background_rate: background events per second (Poisson arrivals;
            the *peak* rate when ``diurnal_amplitude > 0``).
        target_popularity_exponent: Zipf skew of background targets.
        actor_popularity_exponent: Zipf skew of background actors; mildly
            skewed because active accounts both follow and are followed more.
        bursts: the correlated bursts to inject.
        diurnal_amplitude: 0 disables; in (0, 1], the background rate
            swings sinusoidally over a 24 h period between
            ``rate * (1 - amplitude)`` at the nightly trough (04:00 UTC)
            and ``rate`` at the afternoon peak — real activity streams
            breathe with the day, which matters for the waking-hours
            filter's funnel share.
        seed: RNG seed; the stream is a pure function of this config.
    """

    num_users: int = 10_000
    duration: float = 3_600.0
    background_rate: float = 10.0
    target_popularity_exponent: float = 0.8
    actor_popularity_exponent: float = 0.4
    bursts: tuple[BurstSpec, ...] = field(default=())
    diurnal_amplitude: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        require_positive(self.num_users, "num_users")
        require_positive(self.duration, "duration")
        require_non_negative(self.background_rate, "background_rate")
        require(
            0.0 <= self.diurnal_amplitude <= 1.0,
            f"diurnal_amplitude must be in [0, 1], got {self.diurnal_amplitude}",
        )
        for burst in self.bursts:
            require(
                burst.start + burst.duration <= self.duration + 1e-9,
                f"burst at {burst.start}+{burst.duration}s exceeds stream "
                f"duration {self.duration}s",
            )
            require(
                0 <= burst.target < self.num_users,
                f"burst target {burst.target} outside id space",
            )


def _generate_rows(config: StreamConfig):
    """Yield ``(created_at, actor, target, action)`` rows, unsorted.

    The single source of the stream's RNG draws, shared by the object and
    columnar generators so the two can never desynchronize: background rows
    first (concatenation order matters — the final stable timestamp sort
    keeps background before bursts at equal times), then each burst's rows.
    """
    rng = make_rng(config.seed, "stream")

    # Background: (possibly non-homogeneous) Poisson arrivals, Zipf actor
    # and target.  Diurnal modulation uses Lewis-Shedler thinning: draw at
    # the peak rate, keep with probability rate(t) / peak.
    if config.background_rate > 0:
        actor_sampler = ZipfSampler(
            config.num_users, config.actor_popularity_exponent, rng
        )
        target_sampler = ZipfSampler(
            config.num_users, config.target_popularity_exponent, rng
        )
        clock = 0.0
        while True:
            clock += rng.expovariate(config.background_rate)
            if clock >= config.duration:
                break
            if config.diurnal_amplitude > 0.0:
                acceptance = diurnal_rate_factor(clock, config.diurnal_amplitude)
                if rng.random() >= acceptance:
                    continue
            actor = actor_sampler.sample()
            target = target_sampler.sample()
            if actor == target:
                continue
            yield clock, actor, target, ActionType.FOLLOW

    # Bursts: distinct popular actors hitting one target inside the window.
    for index, burst in enumerate(config.bursts):
        burst_rng = make_rng(config.seed, "burst", index)
        actor_sampler = ZipfSampler(
            config.num_users, burst.actor_popularity_bias, burst_rng
        )
        actors = actor_sampler.sample_distinct(
            min(burst.num_actors, config.num_users - 1),
            exclude={burst.target},
        )
        burst_rng.shuffle(actors)
        for actor in actors:
            offset = burst_rng.random() * burst.duration
            yield burst.start + offset, actor, burst.target, burst.action


def generate_event_stream(config: StreamConfig) -> list[EdgeEvent]:
    """Generate the event stream described by *config*, sorted by time."""
    events = [
        EdgeEvent(created_at, actor, target, action)
        for created_at, actor, target, action in _generate_rows(config)
    ]
    events.sort(key=lambda event: event.created_at)
    return events


def generate_event_batch(config: StreamConfig) -> "EventBatch":
    """Generate the stream of *config* directly in columnar form.

    Produces exactly the events :func:`generate_event_stream` would (same
    :func:`_generate_rows` draws, same stable timestamp sort) but builds
    the :class:`~repro.core.batch.EventBatch` columns without
    materializing a Python object per event — the natural source for the
    batched ingestion path, where the firehose arrives as arrays rather
    than records.
    """
    from repro.core.batch import ACTION_CODES, EventBatch

    timestamps: list[float] = []
    actors: list[int] = []
    targets: list[int] = []
    action_codes: list[int] = []
    for created_at, actor, target, action in _generate_rows(config):
        timestamps.append(created_at)
        actors.append(actor)
        targets.append(target)
        action_codes.append(ACTION_CODES[action])

    batch = EventBatch(
        timestamps,
        actors,
        targets,
        np.asarray(action_codes, dtype=np.uint8),
        validate=False,
    )
    # Stable sort on timestamp matches list.sort's tie behavior in
    # generate_event_stream (background before bursts at equal times).
    order = np.argsort(batch.timestamps, kind="stable")
    return EventBatch(
        batch.timestamps[order],
        batch.actors[order],
        batch.targets[order],
        batch.actions[order],
        validate=False,
    )


#: UTC hour of the diurnal activity trough.
DIURNAL_TROUGH_HOUR = 4.0


def diurnal_rate_factor(timestamp: float, amplitude: float) -> float:
    """Fraction of the peak rate active at *timestamp* (UTC seconds).

    A raised cosine over 24 h: 1.0 at the afternoon peak (16:00 UTC,
    twelve hours after the trough), ``1 - amplitude`` at 04:00 UTC.
    """
    hours = (timestamp / 3600.0) % 24.0
    phase = (hours - DIURNAL_TROUGH_HOUR) / 24.0 * 2.0 * math.pi
    # cos(phase)=1 at the trough hour; map to [1-amplitude, 1].
    return 1.0 - amplitude * (1.0 + math.cos(phase)) / 2.0


def expected_background_events(config: StreamConfig) -> float:
    """Mean number of background events the config will generate.

    Exact for the homogeneous case; for diurnal streams it integrates the
    raised-cosine acceptance over whole days (approximate for partial
    days, pessimistic by at most half a cycle).
    """
    if config.diurnal_amplitude <= 0.0:
        return config.background_rate * config.duration
    mean_factor = 1.0 - config.diurnal_amplitude / 2.0
    return config.background_rate * config.duration * mean_factor


def burst_intensity(burst: BurstSpec) -> float:
    """Edges per second at the heart of a burst (for workload reports)."""
    return burst.num_actors / burst.duration if burst.duration else math.inf
