"""Synthetic Twitter-like follow graphs.

The generator reproduces the two structural properties that drive the
cost and the hit-rate of diamond detection:

* **In-degree skew** — follow targets are drawn Zipf-by-popularity-rank, so
  rank-0 is a celebrity hub with a huge sorted follower list (stressing the
  intersection kernels) while the tail has short lists;
* **Out-degree heavy tail** — most users follow a modest number of
  accounts, a few follow thousands (these are the users the influencer
  limit exists for).

Popularity rank equals user id (user 0 is the most popular), which keeps
experiments easy to reason about and lets the stream generator target
"popular actors" without recomputing degrees.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gen.zipf import ZipfSampler, power_law_out_degrees
from repro.graph.snapshot import GraphSnapshot
from repro.util.rng import make_rng
from repro.util.validation import require, require_positive


@dataclass(frozen=True)
class TwitterGraphConfig:
    """Parameters of the synthetic follow graph.

    Attributes:
        num_users: vertex count; ids are ``0 .. num_users - 1`` with id
            doubling as popularity rank (0 = most followed).
        mean_followings: average out-degree (accounts followed per user).
            The 2012 Twitter graph averaged ~100 followings over active
            users; the default scales that down for laptop runs.
        out_degree_exponent: Pareto exponent of the out-degree tail.
        max_followings: out-degree truncation point.
        popularity_exponent: Zipf exponent for choosing follow targets;
            ~0.8-1.2 matches measured social-graph skew.
        with_weights: attach synthetic affinity weights to edges (stand-in
            for the production system's "rich features"); weights decay with
            the target's popularity rank plus noise, so the influencer cap
            has meaningful scores to rank by.
        seed: RNG seed; the graph is a pure function of this config.
    """

    num_users: int = 10_000
    mean_followings: float = 20.0
    out_degree_exponent: float = 2.2
    max_followings: int = 1_000
    popularity_exponent: float = 1.0
    with_weights: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        require_positive(self.num_users, "num_users")
        require_positive(self.mean_followings, "mean_followings")
        require(
            self.mean_followings < self.num_users,
            "mean_followings must be below num_users",
        )
        require_positive(self.max_followings, "max_followings")


def generate_follow_graph(config: TwitterGraphConfig) -> GraphSnapshot:
    """Generate a follow-graph snapshot from *config*.

    Deterministic: equal configs produce identical snapshots.
    """
    rng = make_rng(config.seed, "graph")
    degrees = power_law_out_degrees(
        config.num_users,
        config.mean_followings,
        config.out_degree_exponent,
        min(config.max_followings, config.num_users - 1),
        rng,
    )
    targets = ZipfSampler(config.num_users, config.popularity_exponent, rng)

    edges: list[tuple[int, int]] = []
    weights: dict[tuple[int, int], float] | None = (
        {} if config.with_weights else None
    )
    for user, degree in enumerate(degrees):
        followed = targets.sample_distinct(degree, exclude={user})
        for b in followed:
            edges.append((user, b))
            if weights is not None:
                # Affinity: mild preference for popular accounts plus noise.
                weights[(user, b)] = 1.0 / (1.0 + b) + rng.random() * 0.1
    return GraphSnapshot.from_edges(
        edges, num_nodes=config.num_users, edge_weights=weights
    )
