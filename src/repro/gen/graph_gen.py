"""Synthetic Twitter-like follow graphs.

The generator reproduces the two structural properties that drive the
cost and the hit-rate of diamond detection:

* **In-degree skew** — follow targets are drawn Zipf-by-popularity-rank, so
  rank-0 is a celebrity hub with a huge sorted follower list (stressing the
  intersection kernels) while the tail has short lists;
* **Out-degree heavy tail** — most users follow a modest number of
  accounts, a few follow thousands (these are the users the influencer
  limit exists for).

Popularity rank equals user id (user 0 is the most popular), which keeps
experiments easy to reason about and lets the stream generator target
"popular actors" without recomputing degrees.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gen.zipf import ZipfSampler, power_law_out_degrees
from repro.graph.snapshot import GraphSnapshot
from repro.util.rng import derive_seed, make_rng
from repro.util.validation import require, require_positive


@dataclass(frozen=True)
class TwitterGraphConfig:
    """Parameters of the synthetic follow graph.

    Attributes:
        num_users: vertex count; ids are ``0 .. num_users - 1`` with id
            doubling as popularity rank (0 = most followed).
        mean_followings: average out-degree (accounts followed per user).
            The 2012 Twitter graph averaged ~100 followings over active
            users; the default scales that down for laptop runs.
        out_degree_exponent: Pareto exponent of the out-degree tail.
        max_followings: out-degree truncation point.
        popularity_exponent: Zipf exponent for choosing follow targets;
            ~0.8-1.2 matches measured social-graph skew.
        with_weights: attach synthetic affinity weights to edges (stand-in
            for the production system's "rich features"); weights decay with
            the target's popularity rank plus noise, so the influencer cap
            has meaningful scores to rank by.
        seed: RNG seed; the graph is a pure function of this config.
    """

    num_users: int = 10_000
    mean_followings: float = 20.0
    out_degree_exponent: float = 2.2
    max_followings: int = 1_000
    popularity_exponent: float = 1.0
    with_weights: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        require_positive(self.num_users, "num_users")
        require_positive(self.mean_followings, "mean_followings")
        require(
            self.mean_followings < self.num_users,
            "mean_followings must be below num_users",
        )
        require_positive(self.max_followings, "max_followings")


def generate_follow_graph(config: TwitterGraphConfig) -> GraphSnapshot:
    """Generate a follow-graph snapshot from *config*.

    Deterministic: equal configs produce identical snapshots.
    """
    rng = make_rng(config.seed, "graph")
    degrees = power_law_out_degrees(
        config.num_users,
        config.mean_followings,
        config.out_degree_exponent,
        min(config.max_followings, config.num_users - 1),
        rng,
    )
    targets = ZipfSampler(config.num_users, config.popularity_exponent, rng)

    edges: list[tuple[int, int]] = []
    weights: dict[tuple[int, int], float] | None = (
        {} if config.with_weights else None
    )
    for user, degree in enumerate(degrees):
        followed = targets.sample_distinct(degree, exclude={user})
        for b in followed:
            edges.append((user, b))
            if weights is not None:
                # Affinity: mild preference for popular accounts plus noise.
                weights[(user, b)] = 1.0 / (1.0 + b) + rng.random() * 0.1
    return GraphSnapshot.from_edges(
        edges, num_nodes=config.num_users, edge_weights=weights
    )


def generate_follow_graph_chunked(
    config: TwitterGraphConfig, chunk_users: int = 100_000
) -> GraphSnapshot:
    """Generate a follow graph in columnar chunks — the at-scale path.

    :func:`generate_follow_graph` boxes every edge as a Python tuple,
    which is fine at 10^4 users and hopeless at 10^6+ (a 1M-user graph at
    mean degree 8 would box ~8M tuples before CSR construction even
    starts).  This path draws degrees and zipf targets as vectorized
    numpy chunks of *chunk_users* users at a time, so peak memory is the
    final CSR arrays plus one chunk's columns — never a boxed edge list.
    The E21 serving bench's multi-million-user graphs build this way.

    Statistically the same graph family as the boxed path (identical
    Pareto out-degree tail, identical zipf target skew) but **not**
    draw-for-draw identical to it — the vectorized RNG is a different
    stream, and per-(source, target) duplicate draws are dropped instead
    of redrawn, so a user's realized degree can dip slightly below its
    drawn degree where the zipf head collides.  Deterministic per config:
    equal configs produce identical snapshots.

    Weights are unsupported here (``with_weights`` raises): the graphs
    this path exists for never score edges, and a per-edge dict would
    defeat the point.
    """
    require(
        not config.with_weights,
        "chunked generation does not support edge weights; "
        "use generate_follow_graph for weighted graphs",
    )
    require_positive(chunk_users, "chunk_users")
    rng = np.random.default_rng(derive_seed(config.seed, "graph-chunked"))
    num_users = config.num_users
    max_degree = min(config.max_followings, num_users - 1)

    # Zipf target inverse-CDF, shared across chunks (float64[num_users]).
    ranks = np.arange(1, num_users + 1, dtype=np.float64)
    cdf = np.cumsum(1.0 / np.power(ranks, config.popularity_exponent))
    cdf /= cdf[-1]

    src_chunks: list[np.ndarray] = []
    dst_chunks: list[np.ndarray] = []
    for start in range(0, num_users, chunk_users):
        users = np.arange(
            start, min(start + chunk_users, num_users), dtype=np.int64
        )
        degrees = _pareto_out_degrees(
            len(users),
            config.mean_followings,
            config.out_degree_exponent,
            max_degree,
            rng,
        )
        src = np.repeat(users, degrees)
        dst = np.searchsorted(cdf, rng.random(len(src))).astype(np.int64)
        # Drop self-follows and duplicate (src, dst) draws instead of
        # redrawing (the boxed path's sample_distinct); order by (src,
        # dst) first so duplicates are adjacent.
        keep = src != dst
        src, dst = src[keep], dst[keep]
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        fresh = np.ones(len(src), dtype=bool)
        fresh[1:] = (src[1:] != src[:-1]) | (dst[1:] != dst[:-1])
        src, dst = src[fresh], dst[fresh]
        # Every user follows at least one account (the boxed path's
        # invariant): a user whose draws all collapsed gets the next id.
        lonely = users[np.isin(users, src, invert=True)]
        if len(lonely):
            src = np.concatenate([src, lonely])
            dst = np.concatenate([dst, (lonely + 1) % num_users])
        src_chunks.append(src)
        dst_chunks.append(dst)
    return GraphSnapshot.from_arrays(
        np.concatenate(src_chunks),
        np.concatenate(dst_chunks),
        num_nodes=num_users,
    )


def _pareto_out_degrees(
    count: int,
    mean_degree: float,
    exponent: float,
    max_degree: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Vectorized twin of :func:`~repro.gen.zipf.power_law_out_degrees`.

    Same Pareto-tail inverse-CDF draw, clamp, and rescale-to-mean shape,
    computed on int64 columns from a numpy Generator instead of one
    Python float at a time.
    """
    require(exponent > 1.0, "exponent must exceed 1 for a finite mean")
    u = rng.random(count)
    raw = ((1.0 - u) ** (-1.0 / (exponent - 1.0))).astype(np.int64)
    raw = np.clip(raw, 1, max_degree)
    scale = mean_degree / max(raw.mean(), 1.0)
    return np.clip(
        np.round(raw * scale).astype(np.int64), 1, max_degree
    )
