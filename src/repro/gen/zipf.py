"""Heavy-tailed sampling primitives for the synthetic workloads.

Twitter's follow graph is famously skewed: a handful of celebrity accounts
collect a large share of all follows.  Both the graph generator and the
stream generator draw targets from a Zipf distribution over popularity
ranks, which reproduces that skew with one tunable exponent.
"""

from __future__ import annotations

import bisect
import itertools
import random

import numpy as np

from repro.util.validation import require, require_positive


class ZipfSampler:
    """Draw integers in ``[0, n)`` with P(rank r) proportional to 1/(r+1)^s.

    Uses an exact inverse-CDF table (O(n) memory, O(log n) per draw), which
    is plenty fast for the graph sizes this library targets and — unlike
    rejection samplers — is exactly reproducible from the seed alone.
    """

    def __init__(self, n: int, exponent: float, rng: random.Random) -> None:
        """Create a sampler over ranks ``0 .. n-1``.

        Args:
            n: population size.
            exponent: Zipf exponent ``s``; larger means more skew.  ``s = 0``
                degenerates to the uniform distribution.
            rng: source of randomness (owned by the caller).
        """
        require_positive(n, "n")
        require(exponent >= 0.0, f"exponent must be >= 0, got {exponent}")
        self.n = n
        self.exponent = exponent
        self._rng = rng
        weights = 1.0 / np.power(np.arange(1, n + 1, dtype=np.float64), exponent)
        cumulative = np.cumsum(weights)
        cumulative /= cumulative[-1]
        self._cdf = cumulative.tolist()

    def sample(self) -> int:
        """Draw one rank."""
        return bisect.bisect_left(self._cdf, self._rng.random())

    def sample_many(self, count: int) -> list[int]:
        """Draw *count* ranks (with replacement)."""
        return [self.sample() for _ in range(count)]

    def sample_distinct(self, count: int, exclude: set[int] | None = None) -> list[int]:
        """Draw *count* distinct ranks, skipping any in *exclude*.

        Falls back to scanning ranks in popularity order if rejection
        sampling stalls (possible when count approaches n), so the method
        always terminates with exactly *count* values when feasible.
        """
        exclude = exclude or set()
        available = self.n - len([x for x in exclude if 0 <= x < self.n])
        require(
            count <= available,
            f"cannot draw {count} distinct ranks from {available} available",
        )
        chosen: set[int] = set()
        attempts = 0
        limit = max(100, 20 * count)
        while len(chosen) < count and attempts < limit:
            rank = self.sample()
            attempts += 1
            if rank not in chosen and rank not in exclude:
                chosen.add(rank)
        if len(chosen) < count:
            for rank in itertools.count():  # popularity order fill
                if rank not in chosen and rank not in exclude:
                    chosen.add(rank)
                if len(chosen) == count:
                    break
        return sorted(chosen)


def power_law_out_degrees(
    num_users: int,
    mean_degree: float,
    exponent: float,
    max_degree: int,
    rng: random.Random,
) -> list[int]:
    """Sample a per-user out-degree sequence with a Pareto-like tail.

    Out-degrees (how many accounts a user follows) are drawn from a discrete
    power law with the given *exponent*, truncated at *max_degree*, then
    rescaled so the empirical mean approximates *mean_degree*.  Every user
    follows at least one account — accounts with zero followings generate no
    signal and would only pad the vertex count.
    """
    require_positive(num_users, "num_users")
    require_positive(mean_degree, "mean_degree")
    require(exponent > 1.0, "exponent must exceed 1 for a finite mean")
    require(max_degree >= 1, "max_degree must be >= 1")

    raw = []
    for _ in range(num_users):
        # Inverse-CDF draw from a Pareto tail starting at 1.
        u = rng.random()
        degree = int((1.0 - u) ** (-1.0 / (exponent - 1.0)))
        raw.append(min(max(degree, 1), max_degree))
    scale = mean_degree / (sum(raw) / num_users)
    return [min(max(int(round(d * scale)), 1), max_degree) for d in raw]
