"""Canned workload scenarios shared by examples, tests, and benchmarks.

Each scenario bundles a synthetic graph and a matching event stream with a
short narrative of what it models.  They are small enough for CI yet shaped
like the situations the paper's introduction motivates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.events import ActionType, EdgeEvent
from repro.gen.graph_gen import TwitterGraphConfig, generate_follow_graph
from repro.gen.stream_gen import BurstSpec, StreamConfig, generate_event_stream
from repro.graph.snapshot import GraphSnapshot


@dataclass(frozen=True)
class Scenario:
    """A named workload: follow graph + event stream + narrative."""

    name: str
    description: str
    snapshot: GraphSnapshot
    events: list[EdgeEvent]


def celebrity_join(
    num_users: int = 5_000,
    followers_in_first_hour: int = 400,
    seed: int = 7,
) -> Scenario:
    """A famous person joins; popular accounts follow within the hour.

    The new account is modelled as the *least* popular existing id (no
    followers yet), and the burst actors are popularity-biased — exactly the
    "who to follow" situation from the paper's introduction.
    """
    graph_config = TwitterGraphConfig(num_users=num_users, seed=seed)
    snapshot = generate_follow_graph(graph_config)
    newcomer = num_users - 1
    stream_config = StreamConfig(
        num_users=num_users,
        duration=3_600.0,
        background_rate=5.0,
        bursts=(
            BurstSpec(
                target=newcomer,
                start=300.0,
                duration=3_000.0,
                num_actors=followers_in_first_hour,
                actor_popularity_bias=1.3,
            ),
        ),
        seed=seed,
    )
    return Scenario(
        name="celebrity_join",
        description=(
            "A notable account joins and popular users follow it within the "
            "hour; diamond motifs fire for users following several of those "
            "early adopters."
        ),
        snapshot=snapshot,
        events=generate_event_stream(stream_config),
    )


def breaking_news(
    num_users: int = 5_000,
    retweeters: int = 300,
    seed: int = 11,
) -> Scenario:
    """A news tweet goes viral: a sharp retweet burst over minutes.

    The dynamic edges are retweets (content recommendation), showing the
    same algorithm working on non-follow actions as §1 promises.  The tweet
    is given an id inside the user id space for simplicity.
    """
    graph_config = TwitterGraphConfig(num_users=num_users, seed=seed)
    snapshot = generate_follow_graph(graph_config)
    tweet = num_users - 2
    stream_config = StreamConfig(
        num_users=num_users,
        duration=1_800.0,
        background_rate=8.0,
        bursts=(
            BurstSpec(
                target=tweet,
                start=60.0,
                duration=600.0,
                num_actors=retweeters,
                actor_popularity_bias=1.0,
                action=ActionType.RETWEET,
            ),
        ),
        seed=seed,
    )
    return Scenario(
        name="breaking_news",
        description=(
            "A tweet goes viral over ten minutes; users following several "
            "retweeters get the tweet pushed while it is still hot."
        ),
        snapshot=snapshot,
        events=generate_event_stream(stream_config),
    )


def quiet_day(num_users: int = 5_000, seed: int = 3) -> Scenario:
    """Uncorrelated background churn only — motifs should be rare.

    The negative control: any detector claiming lots of recommendations
    here is reacting to popularity skew, not temporal correlation.
    """
    graph_config = TwitterGraphConfig(num_users=num_users, seed=seed)
    snapshot = generate_follow_graph(graph_config)
    stream_config = StreamConfig(
        num_users=num_users,
        duration=3_600.0,
        background_rate=10.0,
        bursts=(),
        seed=seed,
    )
    return Scenario(
        name="quiet_day",
        description="Uncorrelated background follows only; few motifs fire.",
        snapshot=snapshot,
        events=generate_event_stream(stream_config),
    )
