"""Durable state tier: write-ahead event log, incremental snapshots,
replay-to-now recovery.

The system is a long-lived online service — motif state accumulates for
hours over the dynamic graph, so losing S/D/pair-table state on a crash
means a cold multi-hour rebuild.  This package makes the accumulated
state survivable:

* :mod:`repro.durability.wal` — a segmented write-ahead log of ingested
  :class:`~repro.core.batch.EventBatch` frames (CRC-per-record,
  fsync-batched, torn-tail truncation on reopen).
* :mod:`repro.durability.snapshot` — periodic incremental snapshots of
  every state arena (D edges, dedup pair table, delivered ledger,
  serving rows) as deltas against the previous snapshot, with a manifest
  recording the WAL high-water mark each snapshot covers.
* :mod:`repro.durability.recover` — load the latest snapshot, replay the
  WAL tail through the normal batched ingest path, and hand back a live
  cluster + delivery funnel equivalent to the crashed one (modulo the
  un-flushed WAL tail).
* :mod:`repro.durability.manager` — the live-side glue: the consumer's
  WAL tap, the quiescent-point snapshot trigger, and the stats feed for
  :class:`~repro.ops.monitor.ClusterMonitor` gauges.
"""

from repro.durability.manager import DurabilityManager, prepare_root
from repro.durability.recover import RecoveryResult, recover
from repro.durability.snapshot import SnapshotStore
from repro.durability.wal import WalRecord, WriteAheadLog, iter_wal

__all__ = [
    "DurabilityManager",
    "RecoveryResult",
    "SnapshotStore",
    "WalRecord",
    "WriteAheadLog",
    "iter_wal",
    "prepare_root",
    "recover",
]
