"""Replay-to-now recovery: durability root in, rebuilt deployment out.

Recovery composes the other two halves of the tier.  It rebuilds the
cluster from the root's static graph + run configuration (always as an
in-process deployment — results are transport-invariant, so the recovered
state is valid whatever transport the crashed run used), then either

* warm-starts from the latest snapshot — D restored fleet-wide through
  the ``load_dynamic`` control message, funnel filter tables reloaded,
  the delivered ledger re-seeded, the serving cache rematerialized — and
  replays only the WAL records *after* the snapshot's high-water mark, or
* cold-starts (``use_snapshot=False``) and replays the entire surviving
  WAL from sequence zero.

Replayed batches go through the cluster's normal batched ingest
(:meth:`~repro.cluster.broker.Broker.process_batch`) and the delivery
funnel's normal ``offer_batch``, each at its original flush time — the
same code path the live topology ran, so a recovered deployment's
delivered multiset equals the uninterrupted run's for every event the
WAL retained (the crash-kill-restart suite pins this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.core.params import DetectionParams
from repro.core.recommendation import RecommendationBatch
from repro.delivery.dedup import DedupFilter
from repro.delivery.pipeline import DeliveryPipeline
from repro.durability.manager import load_root_config
from repro.durability.snapshot import SnapshotStore
from repro.durability.wal import iter_wal
from repro.graph.snapshot import GraphSnapshot

_EMPTY_F64 = np.empty(0, dtype=np.float64)


@dataclass
class RecoveryResult:
    """A recovered deployment plus everything replay produced.

    ``delivered`` is the full ledger — the snapshot's rows (already
    delivered before the crash, in order) followed by every notification
    replay re-delivered — as ``(recipient, candidate, created_at,
    delivered_at)`` tuples, the currency the equivalence suite compares.
    """

    cluster: Cluster
    delivery: DeliveryPipeline
    delivered: list[tuple[int, int, float, float]] = field(
        default_factory=list
    )
    serving: "object | None" = None
    snapshot_id: str | None = None
    wal_start_seq: int = 0
    replayed_records: int = 0
    replayed_events: int = 0
    #: Creation timestamps of every event the recovered state covers
    #: (snapshot arena + replayed tail) — the verifier's event universe.
    event_timestamps: np.ndarray = field(
        default_factory=lambda: _EMPTY_F64
    )

    def close(self) -> None:
        self.cluster.close()


def _build_cluster(root: Path, config: dict) -> Cluster:
    snapshot = GraphSnapshot.load(root / "graph.npz")
    params = DetectionParams(
        k=int(config.get("k", 3)), tau=float(config.get("tau", 1_800.0))
    )
    cluster_config = ClusterConfig(
        num_partitions=int(config.get("num_partitions", 1)),
        s_backend=config.get("s_backend", "csr"),
        d_backend=config.get("d_backend", "ring"),
        transport="inprocess",
    )
    return Cluster.build(snapshot, params, cluster_config)


def _build_serving(config: dict, arrays: dict[str, np.ndarray]):
    from repro.serving.cache import ShardedServingCache

    cache = ShardedServingCache(
        num_shards=int(config.get("serving_shards", 1)),
        k=int(config.get("serving_k", 2)),
    )
    cache.load_state(arrays)
    return cache


def recover(root: str | Path, *, use_snapshot: bool = True) -> RecoveryResult:
    """Rebuild a crashed deployment from its durability root.

    Args:
        root: the directory a :class:`~repro.durability.manager.
            DurabilityManager` (via ``prepare_root``) wrote during the
            crashed run.
        use_snapshot: warm-start from the latest snapshot when one
            exists; ``False`` forces a full-WAL cold replay (only
            possible when segment GC was disabled — the default GC
            deletes segments a snapshot covers).

    Replay stops, with a :class:`RuntimeWarning`, at the WAL's torn
    tail if the crash left one; everything before it is recovered.
    """
    root = Path(root)
    config = load_root_config(root)
    cluster = _build_cluster(root, config)
    delivery = DeliveryPipeline(filters=[DedupFilter()])
    result = RecoveryResult(cluster=cluster, delivery=delivery)

    event_parts: list[np.ndarray] = []
    store = SnapshotStore(root / "snapshots")
    if use_snapshot and store.list_ids():
        manifest, components = store.load_latest()
        result.snapshot_id = manifest["id"]
        result.wal_start_seq = int(manifest["wal_seq"]) + 1
        cluster.load_dynamic(components["cluster_d"])
        for stage in delivery.filters:
            arrays = components.get(f"filter_{stage.name}")
            if arrays is not None:
                stage.load_state(arrays)
        ledger = components.get("ledger")
        if ledger is not None:
            result.delivered.extend(
                zip(
                    ledger["recipients"].tolist(),
                    ledger["candidates"].tolist(),
                    ledger["created_at"].tolist(),
                    ledger["delivered_at"].tolist(),
                )
            )
        if "serving" in components:
            result.serving = _build_serving(config, components["serving"])
        arena = components.get("events", {}).get("timestamps")
        if arena is not None:
            event_parts.append(arena)

    for record in iter_wal(root / "wal", start_seq=result.wal_start_seq):
        # The live consumer's exact ingest: one batched fan-out per WAL
        # record at its original flush time, per-event attribution kept.
        grouped, _latency = cluster.broker.process_batch(
            record.batch, now=record.now
        )
        merged = RecommendationBatch.concat_all(grouped)
        if len(merged):
            for notification in delivery.offer_batch(merged, record.now):
                rec = notification.recommendation
                result.delivered.append(
                    (
                        rec.recipient,
                        rec.candidate,
                        rec.created_at,
                        notification.delivered_at,
                    )
                )
        event_parts.append(record.batch.timestamps)
        result.replayed_records += 1
        result.replayed_events += len(record.batch)

    if event_parts:
        result.event_timestamps = np.concatenate(event_parts)
    return result
