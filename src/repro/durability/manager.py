"""Live-side durability glue: the WAL tap and the snapshot trigger.

A :class:`DurabilityManager` owns one durability *root* directory::

    <root>/graph.npz     the static follow graph (written once at start)
    <root>/config.json   the run's detection/cluster configuration
    <root>/wal/          segmented write-ahead event log
    <root>/snapshots/    incremental state snapshots + manifests

The streaming consumer calls :meth:`log_batch` immediately before every
flush into the cluster, so the WAL prefix is exactly the set of batches
the cluster has ingested.  The topology calls :meth:`snapshot` at
quiescent points (no in-flight candidates anywhere between the consumer
and the funnel), capturing every state arena — one replica's D edges
via the cluster's ``checkpoint`` control message, the delivery filters'
pair tables, the delivered-notification ledger, the serving cache rows,
and the append-only arena of logged event timestamps (which is what
lets a verifier know exactly which source events a recovered state
covers).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.core.batch import EventBatch
from repro.durability.snapshot import SnapshotStore
from repro.durability.wal import WriteAheadLog, iter_wal

if TYPE_CHECKING:
    from repro.cluster.cluster import Cluster
    from repro.graph.snapshot import GraphSnapshot

_EMPTY_F64 = np.empty(0, dtype=np.float64)


def prepare_root(
    root: str | Path, snapshot: "GraphSnapshot", config: dict
) -> Path:
    """Initialize a durability root: static graph + run configuration.

    Both are written once at startup — recovery rebuilds the cluster
    from them, then restores dynamic state from snapshots + WAL.
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    snapshot.save(root / "graph.npz")
    with open(root / "config.json", "w") as handle:
        json.dump(config, handle, indent=1)
    return root


def load_root_config(root: str | Path) -> dict:
    with open(Path(root) / "config.json") as handle:
        return json.load(handle)


def ledger_arrays(notifications: Iterable) -> dict[str, np.ndarray]:
    """The delivered ledger as columns (append-only across a run)."""
    notifications = (
        notifications
        if isinstance(notifications, list)
        else list(notifications)
    )
    n = len(notifications)
    return {
        "recipients": np.fromiter(
            (p.recommendation.recipient for p in notifications), np.int64, n
        ),
        "candidates": np.fromiter(
            (p.recommendation.candidate for p in notifications), np.int64, n
        ),
        "created_at": np.fromiter(
            (p.recommendation.created_at for p in notifications), np.float64, n
        ),
        "delivered_at": np.fromiter(
            (p.delivered_at for p in notifications), np.float64, n
        ),
    }


class DurabilityManager:
    """WAL + snapshot store bound to one live cluster."""

    def __init__(
        self,
        root: str | Path,
        cluster: "Cluster | None" = None,
        *,
        fsync_every: int = 64,
        segment_bytes: int = 4 << 20,
        throttle_seconds: float = 0.0,
        gc_segments: bool = True,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.cluster = cluster
        #: Wall-clock sleep per logged batch — a crash-testing aid that
        #: widens the window in which a SIGKILL lands mid-run.
        self.throttle_seconds = throttle_seconds
        self.gc_segments = gc_segments
        self.wal = WriteAheadLog(
            self.root / "wal",
            segment_bytes=segment_bytes,
            fsync_every=fsync_every,
        )
        self.store = SnapshotStore(self.root / "snapshots")
        self.events_logged = 0
        self.snapshots_taken = 0
        self.last_snapshot_wal_seq = -1
        self.last_snapshot_at: float | None = None
        self._last_logged_now = 0.0
        self._event_parts: list[np.ndarray] = []
        self._seed_event_arena()

    def _seed_event_arena(self) -> None:
        """Rebuild the logged-event-timestamp arena over an existing root.

        Snapshot arena + surviving WAL tail, so the append-only delta
        keeps working across restarts of the same deployment.
        """
        manifest = self.store.latest_manifest()
        start_seq = 0
        if manifest is not None:
            self.last_snapshot_wal_seq = int(manifest["wal_seq"])
            self.last_snapshot_at = float(manifest["created_at"])
            start_seq = self.last_snapshot_wal_seq + 1
            _, components = self.store.load(manifest["id"])
            arena = components.get("events", {}).get("timestamps")
            if arena is not None and len(arena):
                self._event_parts.append(arena)
                self.events_logged += len(arena)
        for record in iter_wal(self.wal.directory, start_seq=start_seq):
            self._event_parts.append(record.batch.timestamps.copy())
            self.events_logged += len(record.batch.timestamps)
            self._last_logged_now = max(self._last_logged_now, record.now)

    # -- WAL tap (the consumer calls this before every flush) -----------

    def log_batch(self, batch: EventBatch, now: float) -> int:
        """Append one about-to-be-ingested batch; returns its sequence."""
        if self.throttle_seconds:
            time.sleep(self.throttle_seconds)
        seq = self.wal.append(batch, now)
        self._event_parts.append(batch.timestamps.copy())
        self.events_logged += len(batch.timestamps)
        if now > self._last_logged_now:
            self._last_logged_now = now
        return seq

    def logged_event_timestamps(self) -> np.ndarray:
        """Creation timestamps of every logged event (append-only)."""
        if not self._event_parts:
            return _EMPTY_F64
        return np.concatenate(self._event_parts)

    # -- snapshot trigger (the topology calls this when quiescent) ------

    def snapshot(
        self,
        now: float,
        delivery=None,
        notifications: list | None = None,
        serving=None,
    ) -> str | None:
        """Capture every state arena; returns the snapshot id.

        Must be called at a quiescent point: every WAL-logged batch fully
        ingested, filtered, and delivered, with nothing in flight between
        the consumer and the funnel — the captured arenas then correspond
        exactly to the WAL prefix the manifest's ``wal_seq`` claims.
        Returns None (try again later) when no cluster replica is
        reachable for the D checkpoint.
        """
        if self.cluster is None:
            raise RuntimeError("snapshot() needs a bound cluster")
        dynamic = self.cluster.checkpoint_dynamic()
        if dynamic is None:
            return None
        # Records covered by this snapshot must survive the process: a
        # userspace flush makes them SIGKILL-proof before the manifest
        # that references them lands.
        self.wal.flush()
        wal_seq = self.wal.last_seq
        components = {
            "cluster_d": dynamic,
            "events": {"timestamps": self.logged_event_timestamps()},
        }
        for stage in getattr(delivery, "filters", None) or []:
            state = getattr(stage, "state_arrays", None)
            if callable(state):
                components[f"filter_{stage.name}"] = state()
        if notifications is not None:
            components["ledger"] = ledger_arrays(notifications)
        if serving is not None and hasattr(serving, "state_arrays"):
            # Duck-typed on purpose: the heap cache, the sharded wrapper,
            # and the worker-resident reader (in-worker serving mode, a
            # consistent seqlock copy of the shm arenas another process
            # writes) all expose the same payload schema, so snapshots
            # taken in any serving mode restore into any other.
            components["serving"] = serving.state_arrays()
        snapshot_id = self.store.save(
            components, wal_seq=wal_seq, created_at=now
        )
        self.snapshots_taken += 1
        self.last_snapshot_wal_seq = wal_seq
        self.last_snapshot_at = now
        if self.gc_segments:
            self.wal.truncate_before(wal_seq + 1)
        return snapshot_id

    # -- gauges (ClusterMonitor) ----------------------------------------

    def stats(self) -> dict[str, float]:
        """The operator-facing durability gauges."""
        age = 0.0
        if self.last_snapshot_at is not None:
            age = max(0.0, self._last_logged_now - self.last_snapshot_at)
        elif self._last_logged_now:
            age = self._last_logged_now
        return {
            "wal_records": float(self.wal.last_seq + 1),
            "wal_unsynced": float(self.wal.unsynced_records),
            "wal_bytes": float(self.wal.bytes_appended),
            "snapshot_count": float(self.snapshots_taken),
            "snapshot_lag_records": float(
                self.wal.last_seq - self.last_snapshot_wal_seq
            ),
            "snapshot_age_seconds": age,
            "snapshot_delta_bytes": float(self.store.last_delta_bytes),
            "snapshot_full_bytes": float(self.store.last_full_bytes),
        }

    def close(self) -> None:
        """Sync and close the WAL (idempotent)."""
        self.wal.close()

    def __enter__(self) -> "DurabilityManager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
