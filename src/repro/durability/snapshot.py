"""Incremental snapshots of every state arena, with a WAL high-water mark.

A snapshot is a set of *components* (``cluster_d``, ``dedup``,
``ledger``, ``events``, ``serving`` …), each a dict of named numpy
arrays — exactly what the ``state_arrays()`` hooks on the dynamic index,
pair tables, and serving cache produce.  Rather than dumping every array
in full each interval, the store deltas each array against the previous
snapshot:

* ``same``   — bitwise identical to the base snapshot's array: nothing
  is written, the manifest just points back.
* ``append`` — a 1-D array whose old contents are a prefix of the new
  (the delivered ledger and the logged-event-timestamp arena are
  append-only by construction): only the suffix is written.
* ``full``   — everything else.

Each snapshot directory holds one ``.npy`` per written array plus a
``manifest.json`` recording the delta kind per array, the snapshot's
**WAL high-water mark** (the last event-log sequence number whose
effects the snapshot contains — recovery replays strictly after it),
and the virtual time it was taken.  Loading resolves ``same``/``append``
entries recursively through base manifests, so a load never depends on
in-memory state.  Saves are atomic: arrays and manifest land in a
``tmp-`` directory that is renamed into place, so a crash mid-snapshot
leaves only ignorable debris, never a half-readable snapshot.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import numpy as np

Components = dict[str, dict[str, np.ndarray]]

_TMP_PREFIX = "tmp-"


def _snap_name(index: int) -> str:
    return f"snap-{index:08d}"


def _array_file(component: str, name: str) -> str:
    return f"{component}__{name}.npy"


class SnapshotStore:
    """Atomic, delta-encoded snapshots under one directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        # Debris from a save interrupted by a crash is meaningless — the
        # rename never happened, so nothing references it.
        for leftover in self.root.glob(f"{_TMP_PREFIX}*"):
            shutil.rmtree(leftover, ignore_errors=True)
        #: Arrays of the most recent snapshot, for cheap delta checks.
        self._base: Components | None = None
        self._base_id: str | None = None
        self.last_full_bytes = 0
        self.last_delta_bytes = 0

    # -- listing --------------------------------------------------------

    def list_ids(self) -> list[str]:
        """Snapshot ids on disk, oldest first."""
        return sorted(
            path.name
            for path in self.root.iterdir()
            if path.is_dir() and path.name.startswith("snap-")
        )

    def read_manifest(self, snapshot_id: str) -> dict:
        with open(self.root / snapshot_id / "manifest.json") as handle:
            return json.load(handle)

    def latest_manifest(self) -> dict | None:
        ids = self.list_ids()
        return self.read_manifest(ids[-1]) if ids else None

    # -- save -------------------------------------------------------------

    def save(
        self,
        components: Components,
        *,
        wal_seq: int,
        created_at: float,
    ) -> str:
        """Write one snapshot; returns its id.

        *wal_seq* is the high-water mark: the snapshot must contain the
        effects of every WAL record with ``seq <= wal_seq`` and nothing
        after.  Arrays are delta-encoded against the previous snapshot
        (loaded from disk if this store object is fresh).
        """
        if self._base is None and self.list_ids():
            manifest, arrays = self.load_latest()
            self._base = arrays
            self._base_id = manifest["id"]
        ids = self.list_ids()
        index = int(ids[-1][len("snap-"):]) + 1 if ids else 0
        snapshot_id = _snap_name(index)
        tmp = self.root / f"{_TMP_PREFIX}{snapshot_id}"
        tmp.mkdir()
        manifest: dict = {
            "id": snapshot_id,
            "base": self._base_id,
            "wal_seq": int(wal_seq),
            "created_at": float(created_at),
            "components": {},
        }
        full_bytes = 0
        delta_bytes = 0
        base = self._base or {}
        for component, arrays in components.items():
            entries: dict[str, dict] = {}
            base_arrays = base.get(component, {})
            for name, array in arrays.items():
                array = np.ascontiguousarray(array)
                full_bytes += array.nbytes
                entry: dict = {
                    "dtype": array.dtype.str,
                    "shape": list(array.shape),
                }
                old = base_arrays.get(name) if self._base_id else None
                if (
                    old is not None
                    and old.dtype == array.dtype
                    and old.shape == array.shape
                    and np.array_equal(old, array)
                ):
                    entry["kind"] = "same"
                elif (
                    old is not None
                    and old.dtype == array.dtype
                    and array.ndim == 1
                    and old.ndim == 1
                    and len(array) >= len(old)
                    and np.array_equal(array[: len(old)], old)
                ):
                    entry["kind"] = "append"
                    entry["base_len"] = len(old)
                    suffix = array[len(old):]
                    np.save(tmp / _array_file(component, name), suffix)
                    delta_bytes += suffix.nbytes
                else:
                    entry["kind"] = "full"
                    np.save(tmp / _array_file(component, name), array)
                    delta_bytes += array.nbytes
                entries[name] = entry
            manifest["components"][component] = entries
        with open(tmp / "manifest.json", "w") as handle:
            json.dump(manifest, handle, indent=1)
        tmp.rename(self.root / snapshot_id)
        self._base = {
            component: dict(arrays) for component, arrays in components.items()
        }
        self._base_id = snapshot_id
        self.last_full_bytes = full_bytes
        self.last_delta_bytes = delta_bytes
        return snapshot_id

    # -- load -------------------------------------------------------------

    def _resolve(
        self, manifest: dict, component: str, name: str, entry: dict
    ) -> np.ndarray:
        """One array's bytes, chasing ``same``/``append`` through bases."""
        path = self.root / manifest["id"] / _array_file(component, name)
        kind = entry["kind"]
        if kind == "full":
            return np.load(path)
        base_manifest = self.read_manifest(manifest["base"])
        base_entry = base_manifest["components"][component][name]
        base_array = self._resolve(base_manifest, component, name, base_entry)
        if kind == "same":
            return base_array
        if kind == "append":
            suffix = np.load(path)
            return np.concatenate([base_array, suffix])
        raise ValueError(f"unknown delta kind {kind!r} in {manifest['id']}")

    def load(self, snapshot_id: str) -> tuple[dict, Components]:
        """Materialize one snapshot: ``(manifest, components)``."""
        manifest = self.read_manifest(snapshot_id)
        components: Components = {}
        for component, entries in manifest["components"].items():
            arrays: dict[str, np.ndarray] = {}
            for name, entry in entries.items():
                array = self._resolve(manifest, component, name, entry)
                expected = tuple(entry["shape"])
                if array.shape != expected or array.dtype.str != entry["dtype"]:
                    raise ValueError(
                        f"snapshot {snapshot_id} array {component}.{name} "
                        f"resolved to {array.dtype}{array.shape}, manifest "
                        f"says {entry['dtype']}{expected}"
                    )
                arrays[name] = array
            components[component] = arrays
        return manifest, components

    def load_latest(self) -> tuple[dict, Components]:
        """The newest snapshot (raises when the store is empty)."""
        ids = self.list_ids()
        if not ids:
            raise FileNotFoundError(f"no snapshots under {self.root}")
        return self.load(ids[-1])
