"""Segmented write-ahead log of ingested event batches.

Every batch the streaming consumer flushes into the cluster is first
appended here, so a crashed deployment can be replayed to now from the
last snapshot.  The on-disk format reuses the :mod:`repro.core.wire`
slab frame codec — one :data:`~repro.core.wire.FRAME_EVENT_BATCH` frame
per record, carrying the batch's four columns plus the flush timestamp
(frame ``now``) and the record's monotone sequence number (frame
``aux``) — wrapped in a tiny record envelope::

    u32 payload-length | u32 crc32(payload) | payload (one frame)

Records append to segment files named ``wal-<firstseq>.log`` inside the
WAL directory; a segment rotates once it exceeds ``segment_bytes``, so
:meth:`WriteAheadLog.truncate_before` can garbage-collect whole
segments once a snapshot's high-water mark passes them.

Durability semantics — the contract the crash suite pins:

* Appends land in a userspace file buffer; :meth:`~WriteAheadLog.flush`
  hands them to the OS (surviving SIGKILL of the process) and
  :meth:`~WriteAheadLog.sync` additionally ``fsync``\\ s (surviving power
  loss).  Every ``fsync_every`` appends trigger an automatic sync.
* A crash can therefore lose an un-flushed *suffix* of records, and the
  flush boundary can land mid-record — a **torn tail**.  Both replay
  (:func:`iter_wal`) and append-reopen scan to the last record whose
  CRC verifies, warn, and truncate there; nothing past a bad CRC is
  ever replayed.
"""

from __future__ import annotations

import os
import struct
import warnings
import zlib
from pathlib import Path
from typing import Iterator, NamedTuple

import numpy as np

from repro.core.batch import EventBatch
from repro.core.wire import (
    FRAME_EVENT_BATCH,
    encode_event_batch,
    event_batch_from_frame,
    read_frame,
    write_frame,
)

#: Record envelope: payload length + CRC32 of the payload bytes.
_RECORD_HEADER = struct.Struct("<II")

#: A frame smaller than its own fixed header can only be garbage.
_MIN_PAYLOAD = 32

_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".log"


class WalRecord(NamedTuple):
    """One replayable append: sequence number, flush time, the batch."""

    seq: int
    now: float
    batch: EventBatch


def _segment_path(directory: Path, first_seq: int) -> Path:
    return directory / f"{_SEGMENT_PREFIX}{first_seq:020d}{_SEGMENT_SUFFIX}"


def _list_segments(directory: Path) -> list[tuple[int, Path]]:
    """``(first_seq, path)`` for every segment, in sequence order."""
    out: list[tuple[int, Path]] = []
    for path in directory.glob(f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}"):
        stem = path.name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)]
        try:
            out.append((int(stem), path))
        except ValueError:
            continue
    out.sort()
    return out


def _scan_segment(data: bytes) -> tuple[list[WalRecord], int, str | None]:
    """Parse *data* into records up to the first invalid one.

    Returns ``(records, valid_bytes, error)`` where *valid_bytes* is the
    offset just past the last record whose CRC verified and *error*
    describes why the scan stopped short (None when the segment parsed
    to its end).
    """
    records: list[WalRecord] = []
    offset = 0
    n = len(data)
    while offset < n:
        if offset + _RECORD_HEADER.size > n:
            return records, offset, "torn record header"
        length, crc = _RECORD_HEADER.unpack_from(data, offset)
        start = offset + _RECORD_HEADER.size
        end = start + length
        if length < _MIN_PAYLOAD or end > n:
            return records, offset, "torn record payload"
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            return records, offset, "CRC mismatch"
        kind, cols, _blobs, now, _latency, aux = read_frame(
            np.frombuffer(payload, dtype=np.uint8), copy=True
        )
        if kind != FRAME_EVENT_BATCH or now is None:
            return records, offset, f"unexpected frame kind {kind}"
        records.append(WalRecord(aux, now, event_batch_from_frame(cols)))
        offset = end
    return records, offset, None


def iter_wal(
    directory: str | Path, start_seq: int = 0
) -> Iterator[WalRecord]:
    """Replay every intact record with ``seq >= start_seq``, in order.

    Stops (with a :class:`RuntimeWarning`) at the first record that
    fails its CRC or parses short — the torn tail a crash can leave —
    so garbage is never replayed.  Read-only: the log is not modified.
    """
    directory = Path(directory)
    for _first_seq, path in _list_segments(directory):
        records, valid_bytes, error = _scan_segment(path.read_bytes())
        for record in records:
            if record.seq >= start_seq:
                yield record
        if error is not None:
            warnings.warn(
                f"WAL replay stopped at {path.name} offset {valid_bytes}: "
                f"{error} (torn tail truncated)",
                RuntimeWarning,
                stacklevel=2,
            )
            return


class WriteAheadLog:
    """Appendable, replayable, segment-rotated event log."""

    def __init__(
        self,
        directory: str | Path,
        *,
        segment_bytes: int = 4 << 20,
        fsync_every: int = 64,
    ) -> None:
        if segment_bytes <= 0:
            raise ValueError("segment_bytes must be positive")
        if fsync_every <= 0:
            raise ValueError("fsync_every must be positive")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.segment_bytes = segment_bytes
        self.fsync_every = fsync_every
        self._scratch = np.zeros(64 << 10, dtype=np.uint8)
        self._file = None
        self._segment_size = 0
        self._unsynced = 0
        #: Lifetime appends through this handle (not the on-disk total).
        self.records_appended = 0
        self.bytes_appended = 0
        self.syncs = 0
        self._next_seq = self._recover_tail()

    # -- open/recover ---------------------------------------------------

    def _recover_tail(self) -> int:
        """Scan the last segment, truncate any torn tail, return next seq."""
        segments = _list_segments(self.directory)
        if not segments:
            return 0
        first_seq, path = segments[-1]
        records, valid_bytes, error = _scan_segment(path.read_bytes())
        if error is not None:
            warnings.warn(
                f"truncating torn WAL tail in {path.name} at offset "
                f"{valid_bytes}: {error}",
                RuntimeWarning,
                stacklevel=2,
            )
            with open(path, "r+b") as handle:
                handle.truncate(valid_bytes)
        if valid_bytes > 0:
            # Keep appending into the (possibly truncated) last segment.
            self._file = open(path, "ab")
            self._segment_size = valid_bytes
        else:
            path.unlink(missing_ok=True)
        return records[-1].seq + 1 if records else first_seq

    # -- append path ----------------------------------------------------

    def _encode(self, batch: EventBatch, now: float, seq: int) -> bytes:
        """One record payload (a frame), growing the scratch slab to fit."""
        while True:
            length = write_frame(
                self._scratch,
                FRAME_EVENT_BATCH,
                cols=encode_event_batch(batch),
                now=now,
                aux=seq,
            )
            if length is not None:
                return self._scratch[:length].tobytes()
            self._scratch = np.zeros(len(self._scratch) * 2, dtype=np.uint8)

    def _rotate(self, first_seq: int) -> None:
        if self._file is not None:
            self.sync()
            self._file.close()
        path = _segment_path(self.directory, first_seq)
        self._file = open(path, "ab")
        self._segment_size = 0

    def append(self, batch: EventBatch, now: float) -> int:
        """Log one flushed batch; returns its sequence number."""
        if self._file is None or self._segment_size >= self.segment_bytes:
            self._rotate(self._next_seq)
        seq = self._next_seq
        payload = self._encode(batch, now, seq)
        header = _RECORD_HEADER.pack(len(payload), zlib.crc32(payload))
        self._file.write(header)
        self._file.write(payload)
        written = len(header) + len(payload)
        self._segment_size += written
        self.bytes_appended += written
        self._next_seq += 1
        self.records_appended += 1
        self._unsynced += 1
        if self._unsynced >= self.fsync_every:
            self.sync()
        return seq

    def flush(self) -> None:
        """Hand buffered appends to the OS (SIGKILL-safe, no fsync)."""
        if self._file is not None:
            self._file.flush()

    def sync(self) -> None:
        """Flush and ``fsync`` — records so far survive power loss."""
        if self._file is not None:
            self._file.flush()
            os.fsync(self._file.fileno())
            self.syncs += 1
        self._unsynced = 0

    def close(self) -> None:
        """Sync and release the active segment (idempotent)."""
        if self._file is not None:
            self.sync()
            self._file.close()
            self._file = None

    # -- GC -------------------------------------------------------------

    def truncate_before(self, seq: int) -> int:
        """Delete whole segments fully covered by records ``< seq``.

        Called after a snapshot commits with high-water mark ``seq - 1``:
        those records can never be replayed again.  Only removes segments
        whose *successor* starts at or below *seq* (the boundary segment
        and the active tail always survive).  Returns segments removed.
        """
        segments = _list_segments(self.directory)
        removed = 0
        for (_first, path), (next_first, _next_path) in zip(
            segments, segments[1:]
        ):
            if next_first <= seq:
                path.unlink()
                removed += 1
            else:
                break
        return removed

    # -- introspection --------------------------------------------------

    @property
    def last_seq(self) -> int:
        """Highest sequence number appended (-1 when empty)."""
        return self._next_seq - 1

    @property
    def unsynced_records(self) -> int:
        """Appends since the last fsync (the power-loss exposure)."""
        return self._unsynced

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
