"""Composition of the funnel stages with full accounting.

``DeliveryPipeline.offer`` runs each raw candidate through the configured
filters in order; the first stage to reject wins (cheapest-first ordering
matters in production, and dedup — the cheapest and most selective — runs
first).  A :class:`~repro.sim.metrics.FunnelCounter` tracks survivors per
stage so the billions-to-millions reduction is directly observable.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.core.recommendation import Recommendation
from repro.delivery.dedup import DedupFilter
from repro.delivery.fatigue import FatigueFilter
from repro.delivery.notifier import PushNotification, PushNotifier
from repro.delivery.waking import WakingHoursFilter
from repro.sim.metrics import FunnelCounter


@runtime_checkable
class DeliveryFilter(Protocol):
    """One funnel stage: allow or reject a candidate at time *now*."""

    @property
    def name(self) -> str:
        """Stage label used in funnel accounting."""
        ...

    def allow(self, rec: Recommendation, now: float) -> bool:
        """True to pass the candidate to the next stage."""
        ...


class DeliveryPipeline:
    """Raw candidates in, push notifications out, counters in between."""

    def __init__(
        self,
        filters: list[DeliveryFilter] | None = None,
        notifier: PushNotifier | None = None,
    ) -> None:
        """Create the pipeline.

        Args:
            filters: funnel stages in evaluation order; defaults to the
                production trio dedup -> waking hours -> fatigue.
            notifier: terminal sink (a fresh one when omitted).
        """
        if filters is None:
            filters = [DedupFilter(), WakingHoursFilter(), FatigueFilter()]
        self.filters = list(filters)
        self.notifier = notifier or PushNotifier()
        self.funnel = FunnelCounter()

    def offer(self, rec: Recommendation, now: float) -> PushNotification | None:
        """Run one raw candidate through the funnel.

        Returns the delivered notification, or ``None`` with the rejecting
        stage recorded in the funnel counters.
        """
        self.funnel.count("raw")
        for stage in self.filters:
            if not stage.allow(rec, now):
                self.funnel.count(f"dropped:{stage.name}")
                return None
            self.funnel.count(f"passed:{stage.name}")
        self.funnel.count("delivered")
        return self.notifier.deliver(rec, now)

    def offer_all(
        self, recs: list[Recommendation], now: float
    ) -> list[PushNotification]:
        """Offer a batch arriving at the same time; returns deliveries."""
        delivered = []
        for rec in recs:
            notification = self.offer(rec, now)
            if notification is not None:
                delivered.append(notification)
        return delivered

    def reduction_ratio(self) -> float:
        """Raw candidates per delivered push (the paper's headline ratio)."""
        return self.funnel.reduction_ratio("raw", "delivered")
