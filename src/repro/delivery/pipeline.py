"""Composition of the funnel stages with full accounting.

``DeliveryPipeline.offer`` runs each raw candidate through the configured
filters in order; the first stage to reject wins (cheapest-first ordering
matters in production, and dedup — the cheapest and most selective — runs
first).  A :class:`~repro.sim.metrics.FunnelCounter` tracks survivors per
stage so the billions-to-millions reduction is directly observable.

``offer_batch`` is the columnar twin: a whole
:class:`~repro.core.recommendation.RecommendationBatch` enters as flat
(recipient, candidate) columns, each stage answers with one boolean mask
(``allow_mask``), and the masks AND together *with short-circuit ordering
preserved* — a stage only ever sees (and only ever updates state for) the
candidates every earlier stage passed, so per-stage funnel counts and all
filter state match the per-candidate path exactly.  Only the final
survivors are boxed into :class:`Recommendation` objects for the notifier:
the paper's millions materialize, the billions never do.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.core.recommendation import (
    CandidateColumns,
    Recommendation,
    RecommendationBatch,
)
from repro.delivery.dedup import DedupFilter
from repro.delivery.fatigue import FatigueFilter
from repro.delivery.notifier import PushNotification, PushNotifier
from repro.delivery.waking import WakingHoursFilter
from repro.sim.metrics import FunnelCounter


@runtime_checkable
class DeliveryFilter(Protocol):
    """One funnel stage: allow or reject a candidate at time *now*.

    Stages may additionally implement the *optional* batched entry point::

        def allow_mask(self, columns: CandidateColumns, now: float)
            -> np.ndarray

    returning one boolean per candidate — the decision sequence (and any
    state updates) must match per-candidate ``allow`` calls in column
    order.  The pipeline only hands a stage the candidates every earlier
    stage passed, which is what keeps stateful stages exact.  Pipelines
    containing a stage without ``allow_mask`` fall back to the
    per-candidate loop for the whole batch.
    """

    @property
    def name(self) -> str:
        """Stage label used in funnel accounting."""
        ...

    def allow(self, rec: Recommendation, now: float) -> bool:
        """True to pass the candidate to the next stage."""
        ...


class DeliveryPipeline:
    """Raw candidates in, push notifications out, counters in between.

    The contract every consumer relies on:

    * **Stage order is evaluation order** — cheapest-and-most-selective
      first (dedup), and a rejection short-circuits: later stages never
      see (and never update state for) a rejected candidate.
    * **``offer_batch`` ≡ sequential ``offer``** — same survivors, same
      delivery order, same per-stage funnel counts key for key, same
      filter state afterwards.  The pipeline guarantees this by
      compressing the candidate columns after every stage, so a stateful
      stage's ``allow_mask`` only ever sees the earlier stages' survivors.
    * **Custom filters keep working** — a configured stage without
      ``allow_mask`` routes the whole batch through the per-candidate
      loop (exact, just slower).

    >>> from repro.core.recommendation import (
    ...     RecommendationBatch, RecommendationGroup,
    ... )
    >>> pipeline = DeliveryPipeline(filters=[DedupFilter(window=60.0)])
    >>> batch = RecommendationBatch(
    ...     [RecommendationGroup([1, 2, 1], candidate=9, created_at=0.0)]
    ... )
    >>> [n.recipient for n in pipeline.offer_batch(batch, now=0.0)]
    [1, 2]
    >>> pipeline.funnel.stages
    {'raw': 3, 'dropped:dedup': 1, 'passed:dedup': 2, 'delivered': 2}
    """

    def __init__(
        self,
        filters: list[DeliveryFilter] | None = None,
        notifier: PushNotifier | None = None,
    ) -> None:
        """Create the pipeline.

        Args:
            filters: funnel stages in evaluation order; defaults to the
                production trio dedup -> waking hours -> fatigue.
            notifier: terminal sink (a fresh one when omitted).
        """
        if filters is None:
            filters = [DedupFilter(), WakingHoursFilter(), FatigueFilter()]
        self.filters = list(filters)
        self.notifier = notifier or PushNotifier()
        self.funnel = FunnelCounter()

    def offer(self, rec: Recommendation, now: float) -> PushNotification | None:
        """Run one raw candidate through the funnel.

        Returns the delivered notification, or ``None`` with the rejecting
        stage recorded in the funnel counters.
        """
        self.funnel.count("raw")
        for stage in self.filters:
            if not stage.allow(rec, now):
                self.funnel.count(f"dropped:{stage.name}")
                return None
            self.funnel.count(f"passed:{stage.name}")
        self.funnel.count("delivered")
        return self.notifier.deliver(rec, now)

    def offer_all(
        self, recs: list[Recommendation], now: float
    ) -> list[PushNotification]:
        """Offer a batch arriving at the same time; returns deliveries."""
        delivered = []
        for rec in recs:
            notification = self.offer(rec, now)
            if notification is not None:
                delivered.append(notification)
        return delivered

    def offer_batch(
        self, batch: RecommendationBatch, now: float
    ) -> list[PushNotification]:
        """Run a columnar candidate batch through the funnel, stage by stage.

        Exactly equivalent to offering each of the batch's candidates
        through :meth:`offer` in order — same survivors, same delivery
        order, same per-stage funnel counts, same filter state afterwards —
        but the candidates cross the funnel as flat columns: each stage
        masks the current survivor set, the pipeline compresses, and only
        the final survivors are boxed for the notifier.

        Falls back to the per-candidate loop when any configured stage
        lacks ``allow_mask`` (custom filters keep working unchanged).
        """
        n = len(batch)
        if n == 0:
            return []
        stage_masks = [
            getattr(stage, "allow_mask", None) for stage in self.filters
        ]
        if any(mask is None for mask in stage_masks):
            return self.offer_all(list(batch), now)
        funnel = self.funnel
        funnel.count("raw", n)
        columns: CandidateColumns = batch.columns()
        indices: np.ndarray | None = None  # None = all candidates alive
        for stage, allow_mask in zip(self.filters, stage_masks):
            mask = allow_mask(columns, now)
            passed = int(mask.sum())
            dropped = len(columns) - passed
            # Count only what actually happened so the funnel dict matches
            # the per-candidate path's key-for-key (a stage nobody reached
            # or nobody passed never materializes a zero entry).
            if dropped:
                funnel.count(f"dropped:{stage.name}", dropped)
            if not passed:
                return []
            funnel.count(f"passed:{stage.name}", passed)
            if dropped:
                columns = columns.compress(mask)
                indices = (
                    np.flatnonzero(mask) if indices is None else indices[mask]
                )
        funnel.count("delivered", len(columns))
        survivors = (
            batch.to_recommendations()
            if indices is None
            else batch.select(indices)
        )
        deliver = self.notifier.deliver
        return [deliver(rec, now) for rec in survivors]

    def reduction_ratio(self) -> float:
        """Raw candidates per delivered push (the paper's headline ratio)."""
        return self.funnel.reduction_ratio("raw", "delivered")
