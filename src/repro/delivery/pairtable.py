"""Open-addressing numpy hash tables for the funnel's hot per-pair state.

The dedup and fatigue stages are the funnel's last per-candidate Python
costs and its largest memory consumers on daily horizons: a dict entry
for a ``(recipient, candidate) -> last_sent`` pair costs ~100 bytes and
every probe is an interpreter round-trip.  :class:`Int64KeyTable` packs
the same state into flat numpy columns:

* **keys** — one ``uint64`` per entry; a (recipient, candidate) pair packs
  into a single word as ``recipient << 32 | candidate``
  (:func:`pack_pairs`; both ids must be below 2**32 — use the filters'
  ``backend="dict"`` for exotic id spaces);
* **probe** — splitmix64 of the key selects the home slot in a
  power-of-two capacity; collisions resolve by linear probing, and the
  load factor is capped so probe chains stay short;
* **values** — caller-declared numpy columns (e.g. one ``float64`` time
  per slot for dedup, a small timestamp ring per slot for fatigue),
  reallocated and re-scattered together with the keys on rebuild;
* **grow + compaction** — :meth:`Int64KeyTable.reserve` is amortized:
  when an insert would push occupancy past the load cap it first drops
  entries the caller marks dead (horizon-based compaction — expired
  pairs on a daily window) and only grows the capacity if live entries
  genuinely need the room.

Lookups and inserts come in bit-identical scalar (:meth:`~Int64KeyTable.find`,
:meth:`~Int64KeyTable.upsert`) and vectorized (:meth:`~Int64KeyTable.lookup`,
:meth:`~Int64KeyTable.insert`) forms, so the filters' per-candidate
``allow`` and batched ``allow_mask`` paths share one table.

>>> import numpy as np
>>> table = Int64KeyTable({"time": (np.float64, 0)}, capacity=8)
>>> keys = pack_pairs(np.array([1, 2]), np.array([7, 7]))
>>> slots = table.insert(keys)
>>> table.columns["time"][slots] = 100.0
>>> int(table.lookup(keys[1:])[0]) == int(slots[1])
True
>>> table.find(pack_pair(3, 7))
-1
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable

import numpy as np

from repro.util.hashing import splitmix64, splitmix64_array
from repro.util.validation import require

#: Pair ids must fit 32 bits each to pack into one 64-bit key.
PAIR_ID_LIMIT = 1 << 32

#: Fraction of the capacity that may be occupied before a rebuild.
MAX_LOAD = 0.6

_DEFAULT_CAPACITY = 1024


def _with_npz_suffix(path: Path) -> Path:
    """Normalize to the ``.npz`` suffix ``np.savez`` appends on write."""
    return path if path.suffix == ".npz" else path.with_suffix(
        path.suffix + ".npz"
    )


def pack_pair(recipient: int, candidate: int) -> int:
    """One (recipient, candidate) pair as a single 64-bit key."""
    if not (0 <= recipient < PAIR_ID_LIMIT and 0 <= candidate < PAIR_ID_LIMIT):
        raise ValueError(
            f"pair ids must be in [0, 2**32) to pack into one key, got "
            f"({recipient}, {candidate}); use backend='dict' for wider ids"
        )
    return (recipient << 32) | candidate


def pack_pairs(recipients: np.ndarray, candidates: np.ndarray) -> np.ndarray:
    """Columnar :func:`pack_pair`: two ``int64`` columns -> ``uint64`` keys."""
    if len(recipients):
        low = min(int(recipients.min()), int(candidates.min()))
        high = max(int(recipients.max()), int(candidates.max()))
        if low < 0 or high >= PAIR_ID_LIMIT:
            raise ValueError(
                "pair ids must be in [0, 2**32) to pack into one key; "
                "use backend='dict' for wider ids"
            )
    return (recipients.astype(np.uint64) << np.uint64(32)) | candidates.astype(
        np.uint64
    )


def unpack_pairs(keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Invert :func:`pack_pairs` into (recipients, candidates) ``int64``."""
    recipients = (keys >> np.uint64(32)).astype(np.int64)
    candidates = (keys & np.uint64(PAIR_ID_LIMIT - 1)).astype(np.int64)
    return recipients, candidates


class Int64KeyTable:
    """Open-addressing ``uint64`` -> numpy-columns hash table.

    Args:
        value_columns: ``{name: (dtype, width)}`` value columns allocated
            alongside the keys; ``width == 0`` means a flat ``(capacity,)``
            column, ``width > 0`` a ``(capacity, width)`` matrix (e.g. a
            per-entry timestamp ring).
        capacity: initial slot count; must be a power of two.
        allocator: optional backing hook, ``allocator(capacity, specs) ->
            (keys, filled, columns)`` returning *zero-initialized* arrays
            of the schema's shapes.  The serving cache uses it to carve
            the table out of a shared-memory arena so another process can
            probe the same slots; the default heap-numpy backing stays
            untouched for the funnel's pair tables.  Called once at
            construction and again on every rebuild, so an arena-backed
            table publishes a fresh generation per rebuild.

    The table only ever removes entries wholesale, during
    :meth:`reserve`'s rebuild or an explicit :meth:`compact` — there are
    no tombstones, so the linear probe invariant (no empty slot between a
    key's home and its slot) always holds.
    """

    def __init__(
        self,
        value_columns: dict[str, tuple[np.dtype, int]],
        capacity: int = _DEFAULT_CAPACITY,
        allocator: Callable | None = None,
    ) -> None:
        require(
            capacity >= 2 and capacity & (capacity - 1) == 0,
            f"capacity must be a power of two >= 2, got {capacity}",
        )
        self._specs = dict(value_columns)
        self._allocator = allocator
        self._allocate(capacity)

    def _allocate(self, capacity: int) -> None:
        self._capacity = capacity
        self._size = 0
        if self._allocator is not None:
            self._keys, self._filled, self.columns = self._allocator(
                capacity, self._specs
            )
            return
        self._keys = np.zeros(capacity, dtype=np.uint64)
        self._filled = np.zeros(capacity, dtype=bool)
        self.columns: dict[str, np.ndarray] = {
            name: np.zeros(
                capacity if width == 0 else (capacity, width), dtype=dtype
            )
            for name, (dtype, width) in self._specs.items()
        }

    def __len__(self) -> int:
        return self._size

    @property
    def capacity(self) -> int:
        """Current slot count (power of two)."""
        return self._capacity

    # ------------------------------------------------------------------
    # Scalar probes (the filters' per-candidate ``allow`` path)
    # ------------------------------------------------------------------

    def find(self, key: int) -> int:
        """The slot holding *key*, or -1 when absent."""
        if self._size == 0:
            return -1
        mask = self._capacity - 1
        slot = splitmix64(key) & mask
        keys, filled = self._keys, self._filled
        while filled[slot]:
            if keys[slot] == key:
                return slot
            slot = (slot + 1) & mask
        return -1

    def upsert(self, key: int) -> tuple[int, bool]:
        """The slot for *key*, inserting an empty entry when absent.

        Returns ``(slot, inserted)``; a fresh slot's value columns are
        zeroed.  Reserves capacity itself, so the returned slot is valid
        against the (possibly reallocated) current :attr:`columns`.
        """
        self.reserve(1)
        mask = self._capacity - 1
        slot = splitmix64(key) & mask
        keys, filled = self._keys, self._filled
        while filled[slot]:
            if keys[slot] == key:
                return slot, False
            slot = (slot + 1) & mask
        filled[slot] = True
        keys[slot] = key
        self._size += 1
        return slot, True

    # ------------------------------------------------------------------
    # Vectorized probes (the filters' ``allow_mask`` path)
    # ------------------------------------------------------------------

    def lookup(self, keys: np.ndarray) -> np.ndarray:
        """Slots for a ``uint64`` key column (-1 where absent).

        Runs as probe *rounds*: every unresolved key advances one slot
        per round, so the loop count is the longest probe chain (short,
        because :data:`MAX_LOAD` bounds occupancy), not the key count.
        """
        n = len(keys)
        result = np.full(n, -1, dtype=np.int64)
        if n == 0 or self._size == 0:
            return result
        mask = self._capacity - 1
        slots = (splitmix64_array(keys) & np.uint64(mask)).astype(np.int64)
        idx = np.arange(n)
        active = keys
        while idx.size:
            filled = self._filled[slots]
            hit = filled & (self._keys[slots] == active)
            result[idx[hit]] = slots[hit]
            cont = filled & ~hit
            if not cont.any():
                break
            idx = idx[cont]
            active = active[cont]
            slots = (slots[cont] + 1) & mask
        return result

    def insert(self, keys: np.ndarray) -> np.ndarray:
        """Insert *distinct, absent* keys in bulk; returns their slots.

        Collisions between the new keys themselves resolve in rounds: at
        each round the lowest-index contender claims a free slot and the
        rest advance — every key still lands on its own linear probe
        chain, so later :meth:`lookup`/:meth:`find` calls see it.
        """
        n = len(keys)
        out = np.empty(n, dtype=np.int64)
        if n == 0:
            return out
        self.reserve(n)
        mask = self._capacity - 1
        slots = (splitmix64_array(keys) & np.uint64(mask)).astype(np.int64)
        idx = np.arange(n)
        active = keys
        while idx.size:
            free_idx = np.flatnonzero(~self._filled[slots])
            placed = np.zeros(idx.size, dtype=bool)
            if free_idx.size:
                _, first = np.unique(slots[free_idx], return_index=True)
                winners = free_idx[first]
                won_slots = slots[winners]
                self._filled[won_slots] = True
                self._keys[won_slots] = active[winners]
                out[idx[winners]] = won_slots
                placed[winners] = True
            keep = ~placed
            idx = idx[keep]
            active = active[keep]
            slots = (slots[keep] + 1) & mask
        self._size += n
        return out

    # ------------------------------------------------------------------
    # Amortized grow + horizon compaction
    # ------------------------------------------------------------------

    def reserve(
        self,
        extra: int,
        keep: Callable[[], np.ndarray] | None = None,
    ) -> bool:
        """Make room for *extra* more entries; True when a rebuild ran.

        No-op while ``size + extra`` fits under the load cap.  Otherwise
        the table rebuilds: *keep* (a lazily-evaluated boolean mask over
        the current capacity — lazy so the common fast path never pays
        for it) marks which live entries survive — the horizon-based
        compaction hook — and the capacity doubles only as far as the
        survivors plus *extra* actually require.  Rebuilding reallocates
        :attr:`columns`; callers must re-read them afterwards.
        """
        limit = int(self._capacity * MAX_LOAD)
        if self._size + extra <= limit:
            return False
        survivors = self._filled
        if keep is not None:
            survivors = survivors & keep()
        kept_slots = np.flatnonzero(survivors)
        capacity = self._capacity
        while len(kept_slots) + extra > int(capacity * MAX_LOAD):
            capacity *= 2
        self._rebuild(kept_slots, capacity)
        return True

    def compact(self, keep: np.ndarray) -> int:
        """Drop live entries where *keep* is False; returns entries dropped.

        The eager form of :meth:`reserve`'s lazy compaction hook: a
        non-growing rebuild at the current capacity, for callers that
        want the space back *now* (TTL eviction of dormant serving rows)
        rather than at the next growth.  A no-op (no rebuild, columns
        stay valid) when every live entry survives.
        """
        survivors = self._filled & keep
        dropped = self._size - int(survivors.sum())
        if dropped == 0:
            return 0
        self._rebuild(np.flatnonzero(survivors), self._capacity)
        return dropped

    def _rebuild(self, kept_slots: np.ndarray, capacity: int) -> None:
        old_keys = self._keys[kept_slots]
        old_values = {
            name: column[kept_slots] for name, column in self.columns.items()
        }
        self._allocate(capacity)
        new_slots = self.insert(old_keys)
        for name, values in old_values.items():
            self.columns[name][new_slots] = values

    # ------------------------------------------------------------------
    # Snapshots (delivery-tier restarts)
    # ------------------------------------------------------------------

    def state_arrays(self) -> dict[str, np.ndarray]:
        """The live entries as owned arrays (the in-memory snapshot form).

        Same payload as :meth:`save_npz` writes to disk — occupied slots'
        keys plus one ``column_<name>`` array per value column — so the
        durability tier's snapshot store can delta these arrays without a
        file round-trip.  Slot positions are an artifact of the current
        capacity and are *not* preserved; a restore re-probes.
        """
        slots = self.filled_slots()
        payload: dict[str, np.ndarray] = {"keys": self._keys[slots].copy()}
        for name, column in self.columns.items():
            payload[f"column_{name}"] = column[slots].copy()
        return payload

    def load_state_arrays(self, arrays: dict[str, np.ndarray]) -> None:
        """Insert a :meth:`state_arrays` payload into this (fresh) table.

        Raises:
            ValueError: when the payload's columns do not match the schema.
        """
        saved = {
            name[len("column_"):]: values
            for name, values in arrays.items()
            if name.startswith("column_")
        }
        if set(saved) != set(self.columns):
            raise ValueError(
                f"state columns {sorted(saved)} do not match the "
                f"declared schema {sorted(self.columns)}"
            )
        slots = self.insert(arrays["keys"].astype(np.uint64, copy=False))
        for name, values in saved.items():
            column = self.columns[name]
            if column[slots].shape != values.shape or column.dtype != values.dtype:
                raise ValueError(
                    f"state column {name!r} has shape {values.shape} / "
                    f"dtype {values.dtype}, schema expects "
                    f"{column[slots].shape} / {column.dtype}"
                )
            column[slots] = values

    def save_npz(self, path: str | Path) -> None:
        """Serialize the live entries to an ``.npz`` snapshot.

        Mirrors :meth:`repro.graph.static_index.CsrFollowerIndex.save_npz`:
        only the occupied slots' keys and value columns are written (slot
        positions are an artifact of the current capacity, so they are
        *not* preserved — a reload re-probes).  Uncompressed on purpose;
        reload speed is the point and the columns barely compress.
        """
        np.savez(_with_npz_suffix(Path(path)), **self.state_arrays())

    @classmethod
    def from_snapshot(
        cls,
        path: str | Path,
        value_columns: dict[str, tuple[np.dtype, int]],
    ) -> "Int64KeyTable":
        """Rebuild a table from a :meth:`save_npz` snapshot.

        *value_columns* must describe the same schema the snapshot was
        saved with (same names, dtypes, and widths) — a restarted delivery
        tier constructs its filters with the same configuration, so the
        spec is knowledge the caller already has.  Round-trips are exact
        on the live state: every saved key resolves to its saved values.

        Raises:
            ValueError: when the snapshot's columns do not match the spec.
        """
        path = Path(path)
        if not path.exists():
            path = _with_npz_suffix(path)
        table = cls(value_columns)
        with np.load(path) as data:
            arrays = {name: data[name] for name in data.files}
        table.load_state_arrays(arrays)
        return table

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def filled_slots(self) -> np.ndarray:
        """Indices of occupied slots (for state snapshots in tests)."""
        return np.flatnonzero(self._filled)

    def keys_at(self, slots: np.ndarray) -> np.ndarray:
        """The ``uint64`` keys stored at *slots*."""
        return self._keys[slots]

    def nbytes(self) -> int:
        """Approximate resident bytes across keys and value columns."""
        total = self._keys.nbytes + self._filled.nbytes
        for column in self.columns.values():
            total += column.nbytes
        return total
