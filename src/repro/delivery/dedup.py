"""Duplicate elimination: the first and biggest funnel stage.

A hot C keeps completing diamonds as more B's pile on, so the same
(recipient, candidate) pair arrives over and over in the raw stream.  Each
pair is allowed through once per ``window`` seconds.

Two interchangeable storage backends hold the seen-map:

* ``backend="table"`` (default) — an open-addressing numpy pair table
  (:class:`~repro.delivery.pairtable.Int64KeyTable`): the pair packs into
  one ``uint64`` key, ``allow_mask`` probes the whole batch with a few
  vectorized passes, and expired pairs are evicted by horizon-based
  compaction when the table needs room (daily-horizon residency is a
  few tens of bytes per live pair instead of a ~100-byte dict entry).
  Requires ids below 2**32 and a non-decreasing ``now`` sequence (both
  true on the streaming path).
* ``backend="dict"`` — the reference ``(recipient, candidate) ->
  last_sent`` dict, pruned opportunistically every
  :data:`~DedupFilter.PRUNE_EVERY` accepts.  Handles arbitrary ids and
  arbitrary clocks; equivalence between the two backends is enforced by
  ``tests/test_pair_table.py``.
"""

from __future__ import annotations

import numpy as np

from repro.core.recommendation import CandidateColumns, Recommendation
from repro.delivery.pairtable import (
    Int64KeyTable,
    pack_pair,
    pack_pairs,
    unpack_pairs,
)
from repro.util.validation import require, require_positive

DEDUP_BACKENDS = ("table", "dict")


class DedupFilter:
    """Suppress repeats of (recipient, candidate) within a time window."""

    #: Dict backend: accepts between opportunistic prunes of the seen-map.
    PRUNE_EVERY = 4096

    def __init__(self, window: float = 86_400.0, backend: str = "table") -> None:
        """Create the filter.

        Args:
            window: seconds during which a repeated pair is suppressed
                (default one day, matching the paper's daily accounting).
            backend: ``"table"`` for the numpy pair table (default) or
                ``"dict"`` for the reference dict seen-map.
        """
        require_positive(window, "window")
        require(
            backend in DEDUP_BACKENDS,
            f"backend must be one of {DEDUP_BACKENDS}, got {backend!r}",
        )
        self.window = window
        self.backend = backend
        if backend == "dict":
            self._last_sent: dict[tuple[int, int], float] = {}
            self._since_prune = 0
        else:
            self._table = Int64KeyTable({"time": (np.float64, 0)})

    @property
    def name(self) -> str:
        """Funnel-stage label."""
        return "dedup"

    def allow(self, rec: Recommendation, now: float) -> bool:
        """True iff this pair has not been let through within the window."""
        if self.backend == "dict":
            return self._allow_dict(rec, now)
        table = self._table
        key = pack_pair(rec.recipient, rec.candidate)
        slot = table.find(key)
        if slot >= 0:
            if now - table.columns["time"][slot] < self.window:
                return False
        else:
            cutoff = now - self.window
            table.reserve(1, keep=lambda: table.columns["time"] >= cutoff)
            slot, _ = table.upsert(key)
        table.columns["time"][slot] = now
        return True

    def _allow_dict(self, rec: Recommendation, now: float) -> bool:
        key = rec.key()
        last = self._last_sent.get(key)
        if last is not None and now - last < self.window:
            return False
        self._last_sent[key] = now
        self._since_prune += 1
        if self._since_prune >= self.PRUNE_EVERY:
            self._prune(now)
        return True

    def allow_mask(self, columns: CandidateColumns, now: float) -> np.ndarray:
        """Batched :meth:`allow`: one decision per candidate, state updated
        in candidate order — exactly the sequence of per-candidate calls.

        On the table backend the whole batch vectorizes: within one call
        every occurrence of a pair after the first is a duplicate of that
        first occurrence (it was just let through, or it was already
        blocked), so the stage reduces to one ``np.unique`` plus one bulk
        table probe over the distinct pairs — no per-candidate Python at
        all.  The dict backend runs the reference sequential loop over
        the decoded id lists.
        """
        if self.backend == "dict":
            return self._allow_mask_dict(columns, now)
        recipients = columns.recipients
        n = len(recipients)
        keys = pack_pairs(recipients, columns.candidates)
        distinct, first_index = np.unique(keys, return_index=True)
        table = self._table
        slots = table.lookup(distinct)
        found = slots >= 0
        allowed = np.ones(len(distinct), dtype=bool)
        if found.any():
            last = table.columns["time"][slots[found]]
            allowed[found] = now - last >= self.window
        out = np.zeros(n, dtype=bool)
        out[first_index] = allowed
        refreshed = found & allowed
        if refreshed.any():
            table.columns["time"][slots[refreshed]] = now
        missing = ~found
        num_missing = int(missing.sum())
        if num_missing:
            cutoff = now - self.window
            table.reserve(
                num_missing, keep=lambda: table.columns["time"] >= cutoff
            )
            new_slots = table.insert(distinct[missing])
            table.columns["time"][new_slots] = now
        return out

    def _allow_mask_dict(self, columns: CandidateColumns, now: float) -> np.ndarray:
        recipients = columns.recipients_list()
        candidates = columns.candidates_list()
        out = np.empty(len(recipients), dtype=bool)
        last_sent = self._last_sent
        window = self.window
        prune_every = self.PRUNE_EVERY
        since_prune = self._since_prune
        for i, key in enumerate(zip(recipients, candidates)):
            last = last_sent.get(key)
            if last is not None and now - last < window:
                out[i] = False
                continue
            last_sent[key] = now
            since_prune += 1
            if since_prune >= prune_every:
                self._prune(now)
                last_sent = self._last_sent
                since_prune = 0
            out[i] = True
        self._since_prune = since_prune
        return out

    def _prune(self, now: float) -> None:
        cutoff = now - self.window
        self._last_sent = {
            key: t for key, t in self._last_sent.items() if t >= cutoff
        }
        self._since_prune = 0

    def state_arrays(self) -> dict[str, np.ndarray]:
        """The seen-map as owned arrays (for incremental snapshots,
        table backend only)."""
        require(
            self.backend == "table",
            "snapshots require backend='table' (the dict backend is the "
            "in-memory reference)",
        )
        return self._table.state_arrays()

    def load_state(self, arrays: dict[str, np.ndarray]) -> None:
        """Replace the seen-map with a :meth:`state_arrays` payload
        (table backend only)."""
        require(
            self.backend == "table",
            "snapshots require backend='table' (the dict backend is the "
            "in-memory reference)",
        )
        self._table = Int64KeyTable({"time": (np.float64, 0)})
        self._table.load_state_arrays(arrays)

    def save_npz(self, path) -> None:
        """Snapshot the seen-map so a delivery-tier restart keeps its
        daily horizon (table backend only)."""
        require(
            self.backend == "table",
            "snapshots require backend='table' (the dict backend is the "
            "in-memory reference)",
        )
        self._table.save_npz(path)

    @classmethod
    def from_snapshot(
        cls, path, window: float = 86_400.0
    ) -> "DedupFilter":
        """A table-backend filter warmed from a :meth:`save_npz` snapshot.

        *window* is configuration, not state — pass the same value the
        saved filter ran with (it is not persisted).
        """
        out = cls(window=window, backend="table")
        out._table = Int64KeyTable.from_snapshot(
            path, {"time": (np.float64, 0)}
        )
        return out

    def tracked_pairs(self) -> int:
        """Number of pairs currently remembered (memory accounting)."""
        if self.backend == "dict":
            return len(self._last_sent)
        return len(self._table)

    def last_sent_entries(self) -> dict[tuple[int, int], float]:
        """Snapshot of ``(recipient, candidate) -> last_sent`` (tests).

        Backends prune/compact expired entries at different moments, so
        only the in-window subset is comparable across them.
        """
        if self.backend == "dict":
            return dict(self._last_sent)
        slots = self._table.filled_slots()
        recipients, candidates = unpack_pairs(self._table.keys_at(slots))
        times = self._table.columns["time"][slots]
        return {
            (int(r), int(c)): float(t)
            for r, c, t in zip(recipients, candidates, times)
        }
