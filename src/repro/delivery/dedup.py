"""Duplicate elimination: the first and biggest funnel stage.

A hot C keeps completing diamonds as more B's pile on, so the same
(recipient, candidate) pair arrives over and over in the raw stream.  Each
pair is allowed through once per ``window`` seconds; the seen-map is pruned
opportunistically so memory tracks the active window, not the full day.
"""

from __future__ import annotations

import numpy as np

from repro.core.recommendation import CandidateColumns, Recommendation
from repro.util.validation import require_positive


class DedupFilter:
    """Suppress repeats of (recipient, candidate) within a time window."""

    #: How many accepts between opportunistic prunes of the seen-map.
    PRUNE_EVERY = 4096

    def __init__(self, window: float = 86_400.0) -> None:
        """Create the filter.

        Args:
            window: seconds during which a repeated pair is suppressed
                (default one day, matching the paper's daily accounting).
        """
        require_positive(window, "window")
        self.window = window
        self._last_sent: dict[tuple[int, int], float] = {}
        self._since_prune = 0

    @property
    def name(self) -> str:
        """Funnel-stage label."""
        return "dedup"

    def allow(self, rec: Recommendation, now: float) -> bool:
        """True iff this pair has not been let through within the window."""
        key = rec.key()
        last = self._last_sent.get(key)
        if last is not None and now - last < self.window:
            return False
        self._last_sent[key] = now
        self._since_prune += 1
        if self._since_prune >= self.PRUNE_EVERY:
            self._prune(now)
        return True

    def allow_mask(self, columns: CandidateColumns, now: float) -> np.ndarray:
        """Batched :meth:`allow`: one decision per candidate, state updated
        in candidate order — exactly the sequence of per-candidate calls.

        The seen-map is inherently sequential (a pair's first occurrence in
        the batch claims the window for the rest), so this runs as one
        tight loop over the decoded id lists; the win over per-candidate
        offering is skipping the boxed ``Recommendation`` and the
        per-candidate funnel dispatch, not vectorizing the dict.
        """
        recipients = columns.recipients_list()
        candidates = columns.candidates_list()
        out = np.empty(len(recipients), dtype=bool)
        last_sent = self._last_sent
        window = self.window
        prune_every = self.PRUNE_EVERY
        since_prune = self._since_prune
        for i, key in enumerate(zip(recipients, candidates)):
            last = last_sent.get(key)
            if last is not None and now - last < window:
                out[i] = False
                continue
            last_sent[key] = now
            since_prune += 1
            if since_prune >= prune_every:
                self._prune(now)
                last_sent = self._last_sent
                since_prune = 0
            out[i] = True
        self._since_prune = since_prune
        return out

    def _prune(self, now: float) -> None:
        cutoff = now - self.window
        self._last_sent = {
            key: t for key, t in self._last_sent.items() if t >= cutoff
        }
        self._since_prune = 0

    def tracked_pairs(self) -> int:
        """Number of pairs currently remembered (memory accounting)."""
        return len(self._last_sent)
