"""The notification delivery funnel.

"Each day, billions of raw candidates are generated, yielding millions of
push notifications (after eliminating duplicates, suppressing messages
during non-waking hours, controlling for fatigue, etc.)"

The funnel stages, in production order:

1. :class:`~repro.delivery.dedup.DedupFilter` — a (recipient, candidate)
   pair is pushed at most once per window; re-firing motifs generate the
   bulk of the raw volume, so this stage removes the most;
2. :class:`~repro.delivery.waking.WakingHoursFilter` — no pushes while the
   recipient is asleep (per-user timezone model);
3. :class:`~repro.delivery.fatigue.FatigueFilter` — a per-user daily cap.

:class:`~repro.delivery.pipeline.DeliveryPipeline` composes the stages and
keeps a :class:`~repro.sim.metrics.FunnelCounter`, which benchmark E6 reads
to reproduce the billions-to-millions reduction ratio.

The stateful stages (dedup, fatigue) store their maps either in numpy
open-addressing tables (``backend="table"``, the default — vectorized
``allow_mask`` probes, horizon-compacted residency; see
:mod:`repro.delivery.pairtable`) or in the reference dicts
(``backend="dict"`` — arbitrary id spaces and clocks, fastest for
per-candidate ``offer`` workloads).  The ranked configuration inserts
:class:`~repro.delivery.scoring.TopKPerUserBuffer` — columnar accumulation
with a vectorized per-recipient top-k at flush — between detection and
the funnel.

For real notifier concurrency, :class:`~repro.delivery.sharded
.ShardedDeliveryPipeline` splits the funnel by recipient hash onto
independent shards — in-process or one worker process per shard — with
the delivered multiset and summed funnel counts unchanged.
"""

from repro.delivery.dedup import DedupFilter
from repro.delivery.fatigue import FatigueFilter
from repro.delivery.waking import WakingHoursFilter
from repro.delivery.notifier import PushNotification, PushNotifier
from repro.delivery.pipeline import DeliveryFilter, DeliveryPipeline
from repro.delivery.scoring import TopKPerUserBuffer, witness_score
from repro.delivery.sharded import (
    DELIVERY_TRANSPORTS,
    ShardedDeliveryPipeline,
    split_batch_by_shard,
)

__all__ = [
    "DedupFilter",
    "FatigueFilter",
    "WakingHoursFilter",
    "PushNotification",
    "PushNotifier",
    "DeliveryFilter",
    "DeliveryPipeline",
    "TopKPerUserBuffer",
    "witness_score",
    "DELIVERY_TRANSPORTS",
    "ShardedDeliveryPipeline",
    "split_batch_by_shard",
]
