"""Non-waking-hours suppression.

Push notifications are worthless (and annoying) at 4 am.  Production knows
each user's activity pattern; we substitute a deterministic per-user
timezone assignment — user ids hash uniformly over UTC offsets, weighted
toward the offsets where Twitter's 2014 user base actually lived would be
overkill, uniform is fine for funnel shape — and a fixed waking interval
in local time.
"""

from __future__ import annotations

import numpy as np

from repro.core.recommendation import CandidateColumns, Recommendation
from repro.util.hashing import MASK64 as _MASK64
from repro.util.hashing import splitmix64 as _splitmix64
from repro.util.hashing import splitmix64_array as _splitmix64_array
from repro.util.validation import require


class WakingHoursFilter:
    """Allow pushes only during the recipient's local waking hours."""

    def __init__(
        self,
        waking_start_hour: int = 8,
        waking_end_hour: int = 23,
        timezone_salt: int = 0,
        home_offset_hours: int | None = None,
        offset_spread_hours: int = 3,
    ) -> None:
        """Create the filter.

        Args:
            waking_start_hour: local hour (0-23) pushes become allowed.
            waking_end_hour: local hour pushes stop (exclusive); must be
                strictly greater than ``waking_start_hour``.
            timezone_salt: varies the deterministic user -> timezone map
                between experiments.
            home_offset_hours: when given, user timezones concentrate
                around this UTC offset (a geographically-clustered user
                base, like Twitter's 2014 US skew) instead of spreading
                uniformly over all 24 zones.
            offset_spread_hours: half-width of the concentration around
                ``home_offset_hours``.
        """
        require(0 <= waking_start_hour < 24, "waking_start_hour must be 0-23")
        require(0 < waking_end_hour <= 24, "waking_end_hour must be 1-24")
        require(
            waking_start_hour < waking_end_hour,
            "waking_start_hour must precede waking_end_hour",
        )
        require(offset_spread_hours >= 0, "offset_spread_hours must be >= 0")
        self.waking_start_hour = waking_start_hour
        self.waking_end_hour = waking_end_hour
        self.home_offset_hours = home_offset_hours
        self.offset_spread_hours = offset_spread_hours
        self._salt = timezone_salt

    @property
    def name(self) -> str:
        """Funnel-stage label."""
        return "waking_hours"

    def timezone_offset_hours(self, user: int) -> int:
        """Deterministic UTC offset for *user*.

        Uniform over ``[-11, 12]`` by default; concentrated around
        ``home_offset_hours`` (± spread) when configured.
        """
        mixed = _splitmix64(user * 2 + 1 + self._salt)
        if self.home_offset_hours is None:
            return mixed % 24 - 11
        width = 2 * self.offset_spread_hours + 1
        return self.home_offset_hours + mixed % width - self.offset_spread_hours

    def local_hour(self, user: int, now: float) -> float:
        """The user's local hour-of-day for UTC timestamp *now* (seconds)."""
        utc_hours = (now / 3600.0) % 24.0
        return (utc_hours + self.timezone_offset_hours(user)) % 24.0

    def is_awake(self, user: int, now: float) -> bool:
        """True iff *now* falls inside the user's waking interval."""
        hour = self.local_hour(user, now)
        return self.waking_start_hour <= hour < self.waking_end_hour

    def allow(self, rec: Recommendation, now: float) -> bool:
        """Suppress when the recipient is in their non-waking hours."""
        return self.is_awake(rec.recipient, now)

    def allow_mask(self, columns: CandidateColumns, now: float) -> np.ndarray:
        """Batched :meth:`allow`: the whole stage as a few numpy passes.

        The stage is stateless and a pure function of (recipient, now), so
        it vectorizes completely: one splitmix64 mix over the recipient
        column, one modular local-hour computation, one interval test.
        Identical decisions to per-candidate calls (same integer mix, same
        float arithmetic, element for element).
        """
        mixed = _splitmix64_array(
            columns.recipients.astype(np.uint64)
            * np.uint64(2)
            + np.uint64((1 + self._salt) & _MASK64)
        )
        if self.home_offset_hours is None:
            offsets = (mixed % np.uint64(24)).astype(np.int64) - 11
        else:
            width = 2 * self.offset_spread_hours + 1
            offsets = (
                self.home_offset_hours
                + (mixed % np.uint64(width)).astype(np.int64)
                - self.offset_spread_hours
            )
        utc_hours = (now / 3600.0) % 24.0
        local_hours = (utc_hours + offsets) % 24.0
        return (self.waking_start_hour <= local_hours) & (
            local_hours < self.waking_end_hour
        )
