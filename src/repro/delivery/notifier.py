"""The terminal sink: push notifications that actually go out."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.recommendation import Recommendation


@dataclass(frozen=True, slots=True)
class PushNotification:
    """One delivered push: the surviving recommendation plus delivery time."""

    recommendation: Recommendation
    delivered_at: float

    @property
    def recipient(self) -> int:
        """The notified user."""
        return self.recommendation.recipient

    @property
    def latency(self) -> float:
        """Seconds from the triggering edge to delivery."""
        return self.delivered_at - self.recommendation.created_at


@dataclass
class PushNotifier:
    """Collects delivered notifications and per-user counts."""

    notifications: list[PushNotification] = field(default_factory=list)
    per_user: dict[int, int] = field(default_factory=dict)
    #: Cap the retained notification objects (counters keep counting).
    keep_at_most: int | None = None
    delivered_total: int = 0

    def deliver(self, rec: Recommendation, now: float) -> PushNotification:
        """Record one delivery."""
        notification = PushNotification(rec, delivered_at=now)
        if self.keep_at_most is None or len(self.notifications) < self.keep_at_most:
            self.notifications.append(notification)
        self.per_user[rec.recipient] = self.per_user.get(rec.recipient, 0) + 1
        self.delivered_total += 1
        return notification

    def unique_recipients(self) -> int:
        """Users who received at least one push."""
        return len(self.per_user)

    def max_per_user(self) -> int:
        """Largest per-user delivery count (fatigue sanity metric)."""
        return max(self.per_user.values(), default=0)
