"""Candidate scoring and top-k selection under the fatigue budget.

The fatigue filter caps pushes per user per day; production must then
choose *which* candidates spend the budget.  The natural score for a
diamond candidate combines:

* **corroboration** — how many fresh witnesses completed the motif (a
  candidate seen via 7 followings beats one seen via 3); and
* **freshness** — exponentially decayed age, because "what's hot" cools.

:class:`TopKPerUserBuffer` batches raw candidates per recipient over a
short window and releases only each user's top-k, which is how a ranked
delivery stage slots between detection and the fatigue filter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.recommendation import Recommendation, RecommendationBatch
from repro.util.validation import require_positive


def witness_score(
    rec: Recommendation, now: float, half_life: float = 1_800.0
) -> float:
    """Corroboration x freshness score for one candidate.

    ``len(rec.via)`` is the witness count at emission time; age decays
    with the given *half_life* in seconds.  Candidates with no recorded
    witnesses (foreign detectors) score as single-witness.
    """
    require_positive(half_life, "half_life")
    witnesses = max(len(rec.via), 1)
    age = max(now - rec.created_at, 0.0)
    return witnesses * math.pow(2.0, -age / half_life)


@dataclass
class _UserBuffer:
    candidates: list[Recommendation] = field(default_factory=list)


class TopKPerUserBuffer:
    """Batch candidates per recipient; flush releases each user's best k.

    Dedups by (recipient, candidate) within the buffer, keeping the
    highest-witness instance, so a re-firing motif does not crowd out
    distinct candidates.
    """

    def __init__(self, k: int = 2, half_life: float = 1_800.0) -> None:
        """Create a buffer releasing at most *k* candidates per user."""
        require_positive(k, "k")
        require_positive(half_life, "half_life")
        self.k = k
        self.half_life = half_life
        self._buffers: dict[int, dict[int, Recommendation]] = {}
        self.offered = 0

    def offer(self, rec: Recommendation) -> None:
        """Add one raw candidate to its recipient's buffer."""
        self.offered += 1
        per_user = self._buffers.setdefault(rec.recipient, {})
        existing = per_user.get(rec.candidate)
        if existing is None or len(rec.via) > len(existing.via):
            per_user[rec.candidate] = rec

    def offer_batch(self, batch: RecommendationBatch) -> None:
        """Offer every candidate of a columnar batch, in order.

        Equivalent to per-candidate :meth:`offer` calls, but a candidate is
        boxed only when it actually enters (or replaces an entry in) a
        buffer — the shared group metadata makes the witness-count compare
        free for everyone else.
        """
        buffers = self._buffers
        for group in batch.groups:
            size = len(group)
            self.offered += size
            candidate = group.candidate
            witnesses = group.num_witnesses
            for i, recipient in enumerate(group.recipients_list()):
                per_user = buffers.setdefault(recipient, {})
                existing = per_user.get(candidate)
                if existing is None or witnesses > len(existing.via):
                    per_user[candidate] = group.recommendation_at(i)

    def pending(self) -> int:
        """Distinct (recipient, candidate) pairs currently buffered."""
        return sum(len(per_user) for per_user in self._buffers.values())

    def flush(self, now: float) -> list[Recommendation]:
        """Release each user's top-k by score; clears the buffers.

        Output is ordered by (recipient, descending score) so downstream
        filters see each user's best candidate first — the fatigue filter
        then spends the budget on the highest-scoring ones.
        """
        released: list[Recommendation] = []
        for recipient in sorted(self._buffers):
            candidates = list(self._buffers[recipient].values())
            candidates.sort(
                key=lambda rec: (-witness_score(rec, now, self.half_life), rec.candidate)
            )
            released.extend(candidates[: self.k])
        self._buffers.clear()
        return released
