"""Candidate scoring and top-k selection under the fatigue budget.

The fatigue filter caps pushes per user per day; production must then
choose *which* candidates spend the budget.  The natural score for a
diamond candidate combines:

* **corroboration** — how many fresh witnesses completed the motif (a
  candidate seen via 7 followings beats one seen via 3); and
* **freshness** — exponentially decayed age, because "what's hot" cools.

:class:`TopKPerUserBuffer` batches raw candidates per recipient over a
short window and releases only each user's top-k, which is how a ranked
delivery stage slots between detection and the fatigue filter.

The buffer is *columnar*: offers accumulate as flat numpy columns
(recipient, candidate, witnesses, created_at) — one appended chunk per
:class:`~repro.core.recommendation.RecommendationGroup` on the batched
path, so a viral trigger's whole audience lands as one array reference —
and :meth:`~TopKPerUserBuffer.flush` computes every user's top-k with a
handful of vectorized passes (lexsort over recipient-grouped segments,
with a per-segment argpartition pre-cut once the buffer outgrows
:data:`PRECUT_THRESHOLD`), boxing only the flushed winners.  Semantics are identical to the
per-candidate reference path (``tests/test_delivery_scoring.py`` enforces
winners, tie-breaking, and flush order with Hypothesis).

>>> from repro.core.recommendation import RecommendationBatch, RecommendationGroup
>>> buffer = TopKPerUserBuffer(k=1)
>>> buffer.offer_batch(RecommendationBatch([
...     RecommendationGroup([1, 2], candidate=10, created_at=0.0, via=(5,)),
...     RecommendationGroup([1], candidate=11, created_at=0.0, via=(5, 6)),
... ]))
>>> [(rec.recipient, rec.candidate) for rec in buffer.flush(now=0.0)]
[(1, 11), (2, 10)]
"""

from __future__ import annotations

import numpy as np

from repro.core.recommendation import (
    Recommendation,
    RecommendationBatch,
    RecommendationGroup,
)
from repro.util.validation import require_positive

#: A buffered run of individually-offered (already boxed) candidates, or
#: one columnar detection group — the two chunk shapes the buffer holds.
_Chunk = RecommendationGroup | list

#: Buffers below this many deduped rows flush with the pure ranking
#: lexsort; at or above it each recipient segment is first cut down to
#: its top-k score range with an O(n) introselect, so the O(n log n)
#: sort only sees potential winners (crossover measured by the E17c
#: record in docs/BENCHMARKS.md).
PRECUT_THRESHOLD = 4096


def decayed_scores(
    witnesses: np.ndarray,
    created_at: np.ndarray,
    now: float,
    half_life: float = 1_800.0,
) -> np.ndarray:
    """Corroboration x freshness scores for aligned candidate columns.

    The canonical score computation: ``max(witnesses, 1)`` scaled by
    ``2 ** (-age / half_life)``.  :func:`witness_score` delegates here so
    the scalar and vectorized paths agree bit for bit (``np.exp2`` keeps
    one code path; mixing in ``math.pow`` would not — numpy's SIMD
    kernels round differently in the last ulp).
    """
    require_positive(half_life, "half_life")
    ages = np.maximum(now - created_at, 0.0)
    return np.maximum(witnesses, 1).astype(np.float64) * np.exp2(
        -ages / half_life
    )


def witness_score(
    rec: Recommendation, now: float, half_life: float = 1_800.0
) -> float:
    """Corroboration x freshness score for one candidate.

    ``len(rec.via)`` is the witness count at emission time; age decays
    with the given *half_life* in seconds.  Candidates with no recorded
    witnesses (foreign detectors) score as single-witness.
    """
    return float(
        decayed_scores(
            np.array([len(rec.via)], dtype=np.int64),
            np.array([rec.created_at], dtype=np.float64),
            now,
            half_life,
        )[0]
    )


class TopKPerUserBuffer:
    """Batch candidates per recipient; flush releases each user's best k.

    Dedups by (recipient, candidate) within the buffer, keeping the
    first-offered instance with the highest witness count (later offers
    replace only on *strictly more* witnesses), so a re-firing motif does
    not crowd out distinct candidates.

    Offers are O(1) appends — a whole detection group lands as one chunk,
    a scalar offer as one list append — and all selection work happens in
    :meth:`flush`, vectorized over the accumulated columns.
    """

    def __init__(
        self,
        k: int = 2,
        half_life: float = 1_800.0,
        precut_threshold: int = PRECUT_THRESHOLD,
    ) -> None:
        """Create a buffer releasing at most *k* candidates per user.

        *precut_threshold* is the deduped-row count at which flush
        switches from the pure ranking lexsort to the per-recipient
        argpartition pre-cut (see :data:`PRECUT_THRESHOLD`).
        """
        require_positive(k, "k")
        require_positive(half_life, "half_life")
        require_positive(precut_threshold, "precut_threshold")
        self.k = k
        self.half_life = half_life
        self.precut_threshold = precut_threshold
        #: Offer-ordered chunks: RecommendationGroup | list[Recommendation].
        self._chunks: list[_Chunk] = []
        self._buffered = 0
        self.offered = 0

    def offer(self, rec: Recommendation) -> None:
        """Add one raw (boxed) candidate to the buffer."""
        self.offered += 1
        self._buffered += 1
        chunks = self._chunks
        if chunks and type(chunks[-1]) is list:
            chunks[-1].append(rec)
        else:
            chunks.append([rec])

    def offer_batch(self, batch: RecommendationBatch) -> None:
        """Offer every candidate of a columnar batch, in order.

        Equivalent to per-candidate :meth:`offer` calls, but nothing is
        boxed: each group's recipient column is buffered by reference and
        its shared metadata (candidate, witnesses, creation time) expands
        to columns only at :meth:`flush`.
        """
        chunks = self._chunks
        for group in batch.groups:
            size = len(group)
            self.offered += size
            self._buffered += size
            if size:
                chunks.append(group)

    def _gather(self) -> tuple[np.ndarray, ...]:
        """Concatenate the buffered chunks into flat aligned columns.

        Returns ``(recipients, candidates, witnesses, created_at,
        chunk_starts)`` where ``chunk_starts[i]`` is chunk *i*'s offset in
        the flat order (for mapping winners back to their source chunk).
        """
        recipient_parts: list[np.ndarray] = []
        candidate_parts: list[np.ndarray] = []
        witness_parts: list[np.ndarray] = []
        created_parts: list[np.ndarray] = []
        starts = np.empty(len(self._chunks), dtype=np.int64)
        offset = 0
        for i, chunk in enumerate(self._chunks):
            starts[i] = offset
            if type(chunk) is list:
                size = len(chunk)
                recipient_parts.append(
                    np.fromiter((r.recipient for r in chunk), np.int64, size)
                )
                candidate_parts.append(
                    np.fromiter((r.candidate for r in chunk), np.int64, size)
                )
                witness_parts.append(
                    np.fromiter((len(r.via) for r in chunk), np.int64, size)
                )
                created_parts.append(
                    np.fromiter((r.created_at for r in chunk), np.float64, size)
                )
            else:
                size = len(chunk)
                recipient_parts.append(chunk.recipients)
                candidate_parts.append(np.full(size, chunk.candidate, np.int64))
                witness_parts.append(
                    np.full(size, chunk.num_witnesses, np.int64)
                )
                created_parts.append(
                    np.full(size, chunk.created_at, np.float64)
                )
            offset += size
        return (
            np.concatenate(recipient_parts),
            np.concatenate(candidate_parts),
            np.concatenate(witness_parts),
            np.concatenate(created_parts),
            starts,
        )

    def _kept_rows(self) -> tuple[np.ndarray, ...]:
        """Flat indices surviving the in-buffer (recipient, candidate)
        dedup, plus their aligned id columns.

        The per-candidate rule — replace only on strictly more witnesses —
        keeps, for each pair, the *first* occurrence of its maximum
        witness count; a stable lexsort on (recipient, candidate,
        -witnesses) puts exactly that occurrence first in each pair's run.
        """
        recipients, candidates, witnesses, created_at, starts = self._gather()
        order = np.lexsort((-witnesses, candidates, recipients))
        sorted_recipients = recipients[order]
        sorted_candidates = candidates[order]
        first_in_pair = np.r_[
            True,
            (sorted_recipients[1:] != sorted_recipients[:-1])
            | (sorted_candidates[1:] != sorted_candidates[:-1]),
        ]
        kept = order[first_in_pair]
        return (
            kept,
            sorted_recipients[first_in_pair],
            sorted_candidates[first_in_pair],
            witnesses[kept],
            created_at[kept],
            starts,
        )

    def _precut(
        self, recipients: np.ndarray, scores: np.ndarray
    ) -> np.ndarray | None:
        """Indices surviving the per-recipient argpartition pre-cut.

        ``recipients`` arrives recipient-sorted (from :meth:`_kept_rows`),
        so each recipient's rows form one contiguous segment.  Segments
        larger than *k* are cut to the rows scoring at least the
        segment's k-th best — *including* every boundary tie, so the
        ranking lexsort's (-score, candidate) tie-break still sees every
        row that could place in the top k and returns exactly the uncut
        sort's winners.  Returns ``None`` below :attr:`precut_threshold`,
        where one lexsort is cheaper than the extra pass.
        """
        if len(recipients) < self.precut_threshold:
            return None
        seg_first = np.r_[True, recipients[1:] != recipients[:-1]]
        bounds = np.r_[np.flatnonzero(seg_first), len(recipients)]
        keep = np.ones(len(recipients), dtype=bool)
        k = self.k
        for start, stop in zip(bounds[:-1].tolist(), bounds[1:].tolist()):
            size = stop - start
            if size <= k:
                continue
            segment = scores[start:stop]
            kth_best = np.partition(segment, size - k)[size - k]
            keep[start:stop] = segment >= kth_best
        return np.flatnonzero(keep)

    def pending(self) -> int:
        """Distinct (recipient, candidate) pairs currently buffered."""
        if not self._buffered:
            return 0
        return len(self._kept_rows()[0])

    def flush(self, now: float) -> list[Recommendation]:
        """Release each user's top-k by score; clears the buffers.

        Output is ordered by (recipient, descending score, candidate) so
        downstream filters see each user's best candidate first — the
        fatigue filter then spends the budget on the highest-scoring
        ones.  Only the winners are boxed; everything below the cut stays
        columnar and is dropped with the buffers.
        """
        if not self._buffered:
            self._chunks.clear()
            return []
        kept, kept_recipients, kept_candidates, kept_witnesses, kept_created, starts = (
            self._kept_rows()
        )
        scores = decayed_scores(kept_witnesses, kept_created, now, self.half_life)
        survivors = self._precut(kept_recipients, scores)
        if survivors is not None:
            kept = kept[survivors]
            kept_recipients = kept_recipients[survivors]
            kept_candidates = kept_candidates[survivors]
            scores = scores[survivors]
        ranking = np.lexsort((kept_candidates, -scores, kept_recipients))
        ranked_recipients = kept_recipients[ranking]
        run_first = np.r_[True, ranked_recipients[1:] != ranked_recipients[:-1]]
        run_starts = np.flatnonzero(run_first)
        run_ids = np.cumsum(run_first) - 1
        rank_in_run = np.arange(len(ranking)) - run_starts[run_ids]
        winners = kept[ranking[rank_in_run < self.k]]

        chunks = self._chunks
        chunk_ids = np.searchsorted(starts, winners, side="right") - 1
        starts_list = starts.tolist()
        released: list[Recommendation] = []
        for flat, chunk_id in zip(winners.tolist(), chunk_ids.tolist()):
            chunk = chunks[chunk_id]
            row = flat - starts_list[chunk_id]
            if type(chunk) is list:
                released.append(chunk[row])
            else:
                released.append(chunk.recommendation_at(row))
        self._chunks = []
        self._buffered = 0
        return released
