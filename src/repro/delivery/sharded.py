"""Sharded delivery: the notifier fan-out the paper's push tier implies.

``offer_batch`` used to end in one in-process funnel + notifier, so the
push tier — the part of the paper's pipeline that actually touches every
surviving notification — ran serial no matter how parallel detection got.
:class:`ShardedDeliveryPipeline` splits the funnel by **recipient hash**
(splitmix64, the same mix the waking-hours and pair-table code uses) into
``num_shards`` independent :class:`~repro.delivery.pipeline
.DeliveryPipeline` instances.

Sharding by recipient is semantics-preserving because every stateful
funnel stage is recipient-keyed: dedup on (recipient, candidate), fatigue
and waking-hours on recipient.  A recipient always lands on the same
shard, so each shard's state evolves exactly as the unsharded funnel's
would for that recipient subset — the delivered *multiset* and the summed
per-stage funnel counts are identical; only the delivery interleaving
across shards differs (shard-major instead of batch order).
``tests/test_delivery_sharded.py`` enforces that contract.

Two transports, mirroring the cluster side:

* ``transport="inprocess"`` — shards run sequentially in this process
  (useful for state isolation and as the semantic oracle);
* ``transport="process"`` — one worker process per shard, fed the
  columnar wire format (:mod:`repro.core.wire`); the fan-out is submitted
  to every shard before any result is gathered, so shards genuinely run
  concurrently.  Only surviving notifications cross back (the paper's
  millions, never the billions).
"""

from __future__ import annotations

import multiprocessing
from typing import Callable

import numpy as np

from repro.core.recommendation import (
    EMPTY_RECOMMENDATION_BATCH,
    Recommendation,
    RecommendationBatch,
)
from repro.core.wire import (
    decode_recommendation_batch,
    encode_recommendation_batch,
)
from repro.delivery.notifier import PushNotification
from repro.delivery.pipeline import DeliveryPipeline
from repro.util.hashing import splitmix64, splitmix64_array
from repro.util.procpool import (
    WorkerHandle,
    default_start_method,
    receive_reply,
    spawn_worker,
    stop_workers,
)
from repro.util.validation import require, require_positive

#: Delivery transports (the cluster-side names, same meaning).
DELIVERY_TRANSPORTS = ("inprocess", "process")

#: Builds one shard's funnel; receives the shard index.
PipelineFactory = Callable[[int], DeliveryPipeline]


def _default_pipeline_factory(_shard: int) -> DeliveryPipeline:
    return DeliveryPipeline()


def split_batch_by_shard(
    batch: RecommendationBatch, num_shards: int
) -> list[RecommendationBatch]:
    """Partition a columnar batch into per-shard batches by recipient hash.

    Group metadata is shared by reference
    (:meth:`~repro.core.recommendation.RecommendationGroup.with_recipients`)
    and within-shard candidate order is batch order, which is what keeps
    each shard's stateful stages running the exact per-recipient decision
    sequence the unsharded funnel would.
    """
    require_positive(num_shards, "num_shards")
    per_shard: list[list] = [[] for _ in range(num_shards)]
    for group in batch.groups:
        shards = (
            splitmix64_array(group.recipients.astype(np.uint64))
            % np.uint64(num_shards)
        ).astype(np.int64)
        if len(shards) == 0:
            continue
        first = int(shards[0])
        if np.all(shards == first):  # common small-group fast path
            per_shard[first].append(group)
            continue
        for shard in np.unique(shards).tolist():
            per_shard[shard].append(
                group.with_recipients(group.recipients[shards == shard])
            )
    return [
        RecommendationBatch(groups) if groups else EMPTY_RECOMMENDATION_BATCH
        for groups in per_shard
    ]


def _delivery_worker_main(pipeline, requests, replies) -> None:
    """One delivery shard worker: drain requests until a stop message.

    Every reply carries the shard's current (funnel stages, delivered
    total) so the parent's aggregate accounting stays current as of the
    last reply even if this worker later dies — accumulated history must
    never vanish from ``funnel_totals()`` retroactively.
    """

    def stats() -> tuple[dict[str, int], int]:
        return (dict(pipeline.funnel.stages), pipeline.notifier.delivered_total)

    while True:
        message = requests.get()
        kind = message[0]
        if kind == "batch":
            batch = decode_recommendation_batch(message[1])
            delivered = pipeline.offer_batch(batch, message[2])
            replies.put(("ok", delivered, stats()))
        elif kind == "offer":
            replies.put(("ok", pipeline.offer(message[1], message[2]), stats()))
        elif kind == "stats":
            replies.put(("ok", stats()))
        elif kind == "stop":
            replies.put(("ok", None))
            return


class ShardedDeliveryPipeline:
    """Recipient-hash-sharded funnel, drop-in where a pipeline is consumed.

    Implements the ``offer`` / ``offer_all`` / ``offer_batch`` surface the
    delivery coalescer and the simulated topology drive, so
    ``--delivery-shards N`` slots in without touching the callers.

    Args:
        num_shards: independent funnel shards (>= 1).
        pipeline_factory: builds shard *i*'s funnel (a fresh production
            trio per shard when omitted).  Under ``transport="process"``
            with the ``spawn`` start method the factory's product must be
            picklable; under ``fork`` (the platform default where
            available) anything goes.
        transport: ``"inprocess"`` (default) or ``"process"``.
        start_method: multiprocessing start method override.
    """

    def __init__(
        self,
        num_shards: int,
        pipeline_factory: PipelineFactory | None = None,
        transport: str = "inprocess",
        start_method: str | None = None,
    ) -> None:
        require_positive(num_shards, "num_shards")
        require(
            transport in DELIVERY_TRANSPORTS,
            f"transport must be one of {DELIVERY_TRANSPORTS}, got {transport!r}",
        )
        factory = pipeline_factory or _default_pipeline_factory
        self.num_shards = num_shards
        self.transport = transport
        #: Raw candidates lost to dead shard workers — counted in
        #: candidates on every loss path (observability, never silent).
        self.notifications_lost_shards = 0
        #: Last (funnel stages, delivered total) seen per shard — every
        #: worker reply refreshes it, so a shard that dies keeps its
        #: accumulated history in the aggregates instead of erasing it.
        self._stats_cache: dict[int, tuple[dict[str, int], int]] = {}
        self._closed = False
        if transport == "inprocess":
            self._pipelines: list[DeliveryPipeline] | None = [
                factory(shard) for shard in range(num_shards)
            ]
            self._workers: list[WorkerHandle] = []
            return
        self._pipelines = None
        context = multiprocessing.get_context(
            start_method or default_start_method()
        )
        self._workers = []
        for shard in range(num_shards):
            # spawn_worker hands the shard's funnel over in a one-shot
            # holder cleared right after start(): the parent must not
            # retain N funnels' worth of state it never reads.
            self._workers.append(
                spawn_worker(
                    context,
                    shard,
                    _delivery_worker_main,
                    factory(shard),
                    name=f"repro-delivery-{shard}",
                )
            )

    # ------------------------------------------------------------------
    # Shard routing
    # ------------------------------------------------------------------

    def shard_of(self, recipient: int) -> int:
        """The shard owning *recipient* (stable splitmix64 hash)."""
        return splitmix64(recipient) % self.num_shards

    # ------------------------------------------------------------------
    # Funnel surface (what coalescer / topology call)
    # ------------------------------------------------------------------

    def offer(self, rec: Recommendation, now: float) -> PushNotification | None:
        """Route one candidate to its recipient's shard."""
        shard = self.shard_of(rec.recipient)
        if self._pipelines is not None:
            return self._pipelines[shard].offer(rec, now)
        worker = self._workers[shard]
        if worker.dead:
            self.notifications_lost_shards += 1
            return None
        worker.requests.put(("offer", rec, now))
        raw = receive_reply(worker)
        if raw is None:
            self.notifications_lost_shards += 1
            return None
        self._stats_cache[worker.key] = raw[2]
        return raw[1]

    def offer_all(
        self, recs: list[Recommendation], now: float
    ) -> list[PushNotification]:
        """Offer boxed candidates arriving together; returns deliveries."""
        return self.offer_batch(
            RecommendationBatch.from_recommendations(recs), now
        )

    def offer_batch(
        self, batch: RecommendationBatch, now: float
    ) -> list[PushNotification]:
        """Fan a columnar batch out across the shards and gather survivors.

        Same survivor multiset and summed funnel counts as one unsharded
        ``offer_batch``; delivery order is shard-major.  Under the process
        transport every shard receives its slice before any reply is
        awaited, so the funnels run concurrently.
        """
        if len(batch) == 0:
            return []
        shards = split_batch_by_shard(batch, self.num_shards)
        if self._pipelines is not None:
            delivered: list[PushNotification] = []
            for pipeline, shard_batch in zip(self._pipelines, shards):
                if len(shard_batch):
                    delivered.extend(pipeline.offer_batch(shard_batch, now))
            return delivered
        submitted: list[tuple[WorkerHandle, int]] = []
        for worker, shard_batch in zip(self._workers, shards):
            if not len(shard_batch):
                continue
            if worker.dead or not worker.process.is_alive():
                worker.dead = True
                self.notifications_lost_shards += len(shard_batch)
                continue
            worker.requests.put(
                ("batch", encode_recommendation_batch(shard_batch), now)
            )
            submitted.append((worker, len(shard_batch)))
        delivered = []
        for worker, shard_candidates in submitted:
            raw = receive_reply(worker)
            if raw is None:
                # The loss ledger counts *candidates* in every path, so a
                # mid-batch death charges the whole submitted slice.
                self.notifications_lost_shards += shard_candidates
                continue
            self._stats_cache[worker.key] = raw[2]
            delivered.extend(raw[1])
        return delivered

    # ------------------------------------------------------------------
    # Aggregated accounting
    # ------------------------------------------------------------------

    def funnel_totals(self) -> dict[str, int]:
        """Per-stage funnel counts summed across shards (key for key)."""
        totals: dict[str, int] = {}
        for stages, _delivered in self._shard_stats():
            for key, value in stages.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def delivered_total(self) -> int:
        """Notifications delivered across all shards."""
        return sum(delivered for _stages, delivered in self._shard_stats())

    def reduction_ratio(self) -> float:
        """Raw candidates per delivered push, aggregated over shards."""
        totals = self.funnel_totals()
        delivered = totals.get("delivered", 0)
        if delivered == 0:
            return float("inf")
        return totals.get("raw", 0) / delivered

    def _shard_stats(self) -> list[tuple[dict[str, int], int]]:
        if self._pipelines is not None:
            return [
                (dict(p.funnel.stages), p.notifier.delivered_total)
                for p in self._pipelines
            ]
        for worker in self._workers:
            if worker.dead or not worker.process.is_alive():
                # Dead shard: its history stays in the aggregates via the
                # last reply's cached stats.
                worker.dead = True
                continue
            worker.requests.put(("stats",))
            raw = receive_reply(worker)
            if raw is not None:
                self._stats_cache[worker.key] = raw[1]
        return list(self._stats_cache.values())

    # ------------------------------------------------------------------
    # Worker plumbing (shared with the cluster transport: util/procpool)
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Stop, join, and reap shard workers (idempotent)."""
        if self._closed:
            return
        self._closed = True
        stop_workers(self._workers)

    def __enter__(self) -> "ShardedDeliveryPipeline":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort backstop; close() is the API
        try:
            self.close()
        except Exception:
            pass
