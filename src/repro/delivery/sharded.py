"""Sharded delivery: the notifier fan-out the paper's push tier implies.

``offer_batch`` used to end in one in-process funnel + notifier, so the
push tier — the part of the paper's pipeline that actually touches every
surviving notification — ran serial no matter how parallel detection got.
:class:`ShardedDeliveryPipeline` splits the funnel by **recipient hash**
(splitmix64, the same mix the waking-hours and pair-table code uses) into
``num_shards`` independent :class:`~repro.delivery.pipeline
.DeliveryPipeline` instances.

Sharding by recipient is semantics-preserving because every stateful
funnel stage is recipient-keyed: dedup on (recipient, candidate), fatigue
and waking-hours on recipient.  A recipient always lands on the same
shard, so each shard's state evolves exactly as the unsharded funnel's
would for that recipient subset — the delivered *multiset* and the summed
per-stage funnel counts are identical; only the delivery interleaving
across shards differs (shard-major instead of batch order).
``tests/test_delivery_sharded.py`` enforces that contract.

Three transports, mirroring the cluster side:

* ``transport="inprocess"`` — shards run sequentially in this process
  (useful for state isolation and as the semantic oracle);
* ``transport="process"`` — one worker process per shard, fed the
  columnar wire format (:mod:`repro.core.wire`); the fan-out is submitted
  to every shard before any result is gathered, so shards genuinely run
  concurrently.  Only surviving notifications cross back (the paper's
  millions, never the billions);
* ``transport="shm"`` — the same shard workers fed over zero-copy
  shared-memory ring buffers (:mod:`repro.cluster.shm`): recommendation
  batches go out — and surviving notifications plus piggybacked funnel
  stats come back — as slab frames instead of pickles, with automatic
  pickle fallback when a frame overflows a ring slot.
"""

from __future__ import annotations

import multiprocessing
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.cluster.shm import (
    DEFAULT_SLOT_BYTES,
    DEFAULT_SLOTS,
    RingPair,
    TornFrameError,
    shm_available,
    sweep_segments,
)
from repro.core.recommendation import (
    EMPTY_RECOMMENDATION_BATCH,
    Recommendation,
    RecommendationBatch,
)
from repro.core.wire import (
    FRAME_PICKLE,
    FRAME_REC_BATCH,
    decode_recommendation_batch,
    encode_recommendation_batch,
    frame_notifications,
    frame_recommendation_batch,
    notifications_from_frame,
    read_frame,
    recommendation_batch_from_frame,
    write_frame,
)
from repro.delivery.notifier import PushNotification
from repro.delivery.pipeline import DeliveryPipeline

if TYPE_CHECKING:  # runtime imports are lazy: serving.cache imports from
    # repro.delivery, so a module-level import here would be circular
    from repro.serving.cache import (
        ServingCacheConfig,
        ShardedServingCache,
        ShardedServingCacheReader,
    )
from repro.util.hashing import splitmix64, splitmix64_array
from repro.util.procpool import (
    WorkerHandle,
    default_start_method,
    poll_queue,
    receive_reply,
    spawn_worker,
    stop_workers,
)
from repro.util.validation import require, require_positive

#: Delivery transports (the cluster-side names, same meaning).
DELIVERY_TRANSPORTS = ("inprocess", "process", "shm")

#: Builds one shard's funnel; receives the shard index.
PipelineFactory = Callable[[int], DeliveryPipeline]


def _default_pipeline_factory(_shard: int) -> DeliveryPipeline:
    return DeliveryPipeline()


def split_batch_by_shard(
    batch: RecommendationBatch, num_shards: int
) -> list[RecommendationBatch]:
    """Partition a columnar batch into per-shard batches by recipient hash.

    Group metadata is shared by reference
    (:meth:`~repro.core.recommendation.RecommendationGroup.with_recipients`)
    and within-shard candidate order is batch order, which is what keeps
    each shard's stateful stages running the exact per-recipient decision
    sequence the unsharded funnel would.
    """
    require_positive(num_shards, "num_shards")
    per_shard: list[list] = [[] for _ in range(num_shards)]
    for group in batch.groups:
        shards = (
            splitmix64_array(group.recipients.astype(np.uint64))
            % np.uint64(num_shards)
        ).astype(np.int64)
        if len(shards) == 0:
            continue
        first = int(shards[0])
        if np.all(shards == first):  # common small-group fast path
            per_shard[first].append(group)
            continue
        for shard in np.unique(shards).tolist():
            per_shard[shard].append(
                group.with_recipients(group.recipients[shards == shard])
            )
    return [
        RecommendationBatch(groups) if groups else EMPTY_RECOMMENDATION_BATCH
        for groups in per_shard
    ]


def _delivery_worker_main(state, requests, replies) -> None:
    """One delivery shard worker: drain requests until a stop message.

    Every reply carries the shard's current (funnel stages, delivered
    total) so the parent's aggregate accounting stays current as of the
    last reply even if this worker later dies — accumulated history must
    never vanish from ``funnel_totals()`` retroactively.

    With a serving arena spec the worker is also its shard's serving
    writer: every incoming slice merges into the shard-local shm cache
    *before* the funnel (the same pre-funnel content the parent-mode
    coalescer tap sees), so the parent reads recommendations without ever
    decoding or re-merging a reply.
    """
    pipeline, serving_spec = state
    serving = None
    if serving_spec is not None:
        from repro.serving.cache import ServingCache

        serving = ServingCache.attach_writer(serving_spec)

    def stats() -> tuple[dict[str, int], int]:
        return (dict(pipeline.funnel.stages), pipeline.notifier.delivered_total)

    try:
        while True:
            message = requests.get()
            kind = message[0]
            if kind == "batch":
                batch = decode_recommendation_batch(message[1])
                if serving is not None:
                    serving.ingest_batch(batch, message[2])
                delivered = pipeline.offer_batch(batch, message[2])
                replies.put(("ok", delivered, stats()))
            elif kind == "offer":
                if serving is not None:
                    serving.ingest_released([message[1]], message[2])
                replies.put(
                    ("ok", pipeline.offer(message[1], message[2]), stats())
                )
            elif kind == "stats":
                replies.put(("ok", stats()))
            elif kind == "stop":
                replies.put(("ok", None))
                return
    finally:
        if serving is not None:
            serving.close()


def _shm_delivery_worker_main(state, requests, replies) -> None:
    """One shm delivery shard worker: slab frames in both directions.

    Recommendation batches arrive as ``FRAME_REC_BATCH`` frames (decoded
    with one bulk copy — funnel stages may retain batch columns, so the
    slot can't be lent out zero-copy the way partition ingest can);
    surviving notifications plus piggybacked funnel stats go back as
    ``FRAME_NOTIFICATIONS`` frames.  Either direction falls back to the
    pickle wire behind a marker when a frame overflows its slot.
    """
    pipeline, spec, serving_spec = state
    wire = RingPair.attach(spec)
    serving = None
    if serving_spec is not None:
        from repro.serving.cache import ServingCache

        serving = ServingCache.attach_writer(serving_spec)
    parent_alive = multiprocessing.parent_process().is_alive

    def stats() -> tuple[dict[str, int], int]:
        return (dict(pipeline.funnel.stages), pipeline.notifier.delivered_total)

    def reply_batch(batch: RecommendationBatch, now: float) -> bool:
        if serving is not None:
            serving.ingest_batch(batch, now)
        delivered = pipeline.offer_batch(batch, now)
        reply_mem = wire.reply.acquire_slot(is_peer_alive=parent_alive)
        if reply_mem is None:
            return False
        nbytes = frame_notifications(reply_mem, delivered, stats(), now)
        if nbytes is None:  # slot overflow: pickle fallback
            replies.put(("ok", delivered, stats()))
            nbytes = write_frame(reply_mem, FRAME_PICKLE)
        wire.reply.commit_slot(nbytes)
        return True

    def reply_pickle(payload: tuple) -> bool:
        replies.put(payload)
        reply_mem = wire.reply.acquire_slot(is_peer_alive=parent_alive)
        if reply_mem is None:
            return False
        wire.reply.commit_slot(write_frame(reply_mem, FRAME_PICKLE))
        return True

    try:
        while True:
            mem = wire.request.acquire_frame(is_peer_alive=parent_alive)
            if mem is None:
                return
            kind, cols, blobs, now, _latency, _aux = read_frame(mem, copy=True)
            del mem
            wire.request.release_frame()
            if kind == FRAME_REC_BATCH:
                if not reply_batch(
                    recommendation_batch_from_frame(cols, blobs), now
                ):
                    return
                continue
            message = poll_queue(requests, parent_alive)
            if message is None:
                return
            mkind = message[0]
            if mkind == "batch":  # request-side slot overflow
                if not reply_batch(
                    decode_recommendation_batch(message[1]), message[2]
                ):
                    return
            elif mkind == "offer":
                if serving is not None:
                    serving.ingest_released([message[1]], message[2])
                if not reply_pickle(
                    ("ok", pipeline.offer(message[1], message[2]), stats())
                ):
                    return
            elif mkind == "stats":
                if not reply_pickle(("ok", stats())):
                    return
            elif mkind == "stop":
                return
    finally:
        if serving is not None:
            serving.close()
        wire.close()


class ShardedDeliveryPipeline:
    """Recipient-hash-sharded funnel, drop-in where a pipeline is consumed.

    Implements the ``offer`` / ``offer_all`` / ``offer_batch`` surface the
    delivery coalescer and the simulated topology drive, so
    ``--delivery-shards N`` slots in without touching the callers.

    Args:
        num_shards: independent funnel shards (>= 1).
        pipeline_factory: builds shard *i*'s funnel (a fresh production
            trio per shard when omitted).  Under the worker transports
            with the ``spawn`` start method the factory's product must be
            picklable; under ``fork`` (the platform default where
            available) anything goes.
        transport: ``"inprocess"`` (default), ``"process"``, or
            ``"shm"`` (worker shards fed over zero-copy shared-memory
            rings; needs a working ``/dev/shm``).
        start_method: multiprocessing start method override.
        shm_slots: ring slots per direction per shard (``"shm"`` only).
        shm_slot_bytes: payload bytes per ring slot (``"shm"`` only);
            frames that overflow fall back to the pickle wire.
        serving_tap: called with ``(delivered, now)`` after every gather
            of shard replies — the pull-side serving tier's write path
            when the cache is fed post-funnel (delivered pushes rather
            than ranked winners).  Runs in the parent, so a sharded
            serving cache tapped here still has one writer per shard.
            Mutually exclusive with ``serving``.
        serving: a :class:`~repro.serving.cache.ServingCacheConfig` that
            makes each shard host its *own* serving-cache writer where
            the funnel runs — over shared-memory arenas under the worker
            transports (the parent attaches the read-only
            :class:`~repro.serving.cache.ShardedServingCacheReader`
            exposed as :attr:`serving`), or a plain
            :class:`~repro.serving.cache.ShardedServingCache` in
            process under ``"inprocess"``.  Each shard ingests its batch
            slice *before* its funnel — exactly the pre-funnel content
            the parent-mode coalescer tap would merge — so the served
            multiset is identical to the parent-tap posture while the
            merge cost rides the shard parallelism and reads cross the
            process boundary zero-copy.
    """

    def __init__(
        self,
        num_shards: int,
        pipeline_factory: PipelineFactory | None = None,
        transport: str = "inprocess",
        start_method: str | None = None,
        shm_slots: int = DEFAULT_SLOTS,
        shm_slot_bytes: int = DEFAULT_SLOT_BYTES,
        serving_tap: Callable[[list[PushNotification], float], None]
        | None = None,
        serving: ServingCacheConfig | None = None,
    ) -> None:
        require_positive(num_shards, "num_shards")
        require(
            transport in DELIVERY_TRANSPORTS,
            f"transport must be one of {DELIVERY_TRANSPORTS}, got {transport!r}",
        )
        if transport == "shm" or (serving is not None and transport != "inprocess"):
            require(
                shm_available(),
                "shared memory is unavailable on this host (no /dev/shm?); "
                "use transport='process' instead",
            )
        require(
            serving is None or serving_tap is None,
            "serving (in-worker cache writers) and serving_tap (parent-side "
            "merge) are mutually exclusive",
        )
        factory = pipeline_factory or _default_pipeline_factory
        self.num_shards = num_shards
        self.transport = transport
        self.serving_tap = serving_tap
        #: The serving surface for this pipeline's mode: None without a
        #: serving config; a ShardedServingCache under "inprocess"; a
        #: ShardedServingCacheReader (attach-by-spec, zero-copy reads of
        #: the workers' arenas) under the worker transports.
        self.serving: ShardedServingCache | ShardedServingCacheReader | None = (
            None
        )
        if serving is not None:
            from repro.serving.cache import (
                ShardedServingCache,
                ShardedServingCacheReader,
                create_serving_arena,
            )
        #: Raw candidates lost to dead shard workers — counted in
        #: candidates on every loss path (observability, never silent).
        self.notifications_lost_shards = 0
        #: Last (funnel stages, delivered total) seen per shard — every
        #: worker reply refreshes it, so a shard that dies keeps its
        #: accumulated history in the aggregates instead of erasing it.
        self._stats_cache: dict[int, tuple[dict[str, int], int]] = {}
        self._closed = False
        #: Owned shm segment names, swept again at close as the backstop
        #: for workers that died without their wire being destroyed.
        self._segment_names: list[str] = []
        if transport == "inprocess":
            self._pipelines: list[DeliveryPipeline] | None = [
                factory(shard) for shard in range(num_shards)
            ]
            self._workers: list[WorkerHandle] = []
            if serving is not None:
                self.serving = ShardedServingCache(
                    num_shards=num_shards,
                    k=serving.k,
                    half_life=serving.half_life,
                    capacity=serving.capacity,
                    ttl=serving.ttl,
                )
            return
        self._pipelines = None
        context = multiprocessing.get_context(
            start_method or default_start_method()
        )
        self._workers = []
        serving_specs = []
        for shard in range(num_shards):
            serving_spec = None
            if serving is not None:
                # The parent owns only the 64-byte control segment; the
                # worker creates (and republishes on growth) the data
                # segments under names derived from it.
                serving_spec = create_serving_arena(
                    k=serving.k,
                    half_life=serving.half_life,
                    capacity=serving.capacity,
                    ttl=serving.ttl,
                )
                serving_specs.append(serving_spec)
                self._segment_names.append(serving_spec.control_name)
            # spawn_worker hands the shard's funnel over in a one-shot
            # holder cleared right after start(): the parent must not
            # retain N funnels' worth of state it never reads.
            if transport == "shm":
                wire = RingPair.create(shm_slots, shm_slot_bytes)
                spec = wire.spec
                self._segment_names += [spec.request_name, spec.reply_name]
                try:
                    worker = spawn_worker(
                        context,
                        shard,
                        _shm_delivery_worker_main,
                        (factory(shard), wire.spec, serving_spec),
                        name=f"repro-delivery-{shard}",
                    )
                except Exception:
                    wire.destroy()
                    raise
                worker.wire = wire
            else:
                worker = spawn_worker(
                    context,
                    shard,
                    _delivery_worker_main,
                    (factory(shard), serving_spec),
                    name=f"repro-delivery-{shard}",
                )
            self._workers.append(worker)
        if serving is not None:
            self.serving = ShardedServingCacheReader.attach(serving_specs)
            for worker, reader in zip(self._workers, self.serving.shards):
                worker.arena = reader

    # ------------------------------------------------------------------
    # Shard routing
    # ------------------------------------------------------------------

    def shard_of(self, recipient: int) -> int:
        """The shard owning *recipient* (stable splitmix64 hash)."""
        return splitmix64(recipient) % self.num_shards

    # ------------------------------------------------------------------
    # Wire plumbing (queue vs. shm ring, chosen per worker)
    # ------------------------------------------------------------------

    def _post_message(self, worker: WorkerHandle, message: tuple) -> bool:
        """Send a control tuple (offer/stats) down a worker's wire."""
        if worker.wire is None:
            worker.requests.put(message)
            return True
        if worker.wire.post_control(
            worker.requests,
            message,
            is_peer_alive=worker.process.is_alive,
            timeout=None,
        ):
            return True
        worker.dead = True
        return False

    def _post_batch(self, worker: WorkerHandle, payload, now: float) -> bool:
        """Send an encoded recommendation batch (frame when it fits)."""
        if worker.wire is None:
            worker.requests.put(("batch", payload, now))
            return True
        wire = worker.wire
        mem = wire.request.acquire_slot(is_peer_alive=worker.process.is_alive)
        if mem is None:
            worker.dead = True
            return False
        nbytes = frame_recommendation_batch(mem, payload, now)
        if nbytes is not None:
            wire.request.commit_slot(nbytes)
            wire.frames_shm += 1
            return True
        wire.frames_fallback += 1  # batch too large for a slot
        worker.requests.put(("batch", payload, now))
        wire.request.commit_slot(write_frame(mem, FRAME_PICKLE))
        return True

    def _receive(self, worker: WorkerHandle) -> tuple | None:
        """One reply tuple from a worker, or None once it is known dead."""
        if worker.wire is None:
            return receive_reply(worker)
        wire = worker.wire
        try:
            mem = wire.reply.acquire_frame(
                is_peer_alive=worker.process.is_alive
            )
        except TornFrameError:  # died mid-commit: the frame is garbage
            worker.dead = True
            return None
        if mem is None:
            worker.dead = True
            return None
        kind, cols, blobs, now, _latency, aux = read_frame(mem, copy=True)
        wire.reply.release_frame()
        if kind == FRAME_PICKLE:
            return receive_reply(worker)
        wire.frames_shm += 1
        delivered, stats = notifications_from_frame(cols, blobs, now, aux)
        return ("ok", delivered, stats)

    def wire_stats(self) -> dict[str, float] | None:
        """Frame/fallback counters summed over shards (shm only)."""
        if self.transport != "shm":
            return None
        frames = sum(w.wire.frames_shm for w in self._workers)
        fallbacks = sum(w.wire.frames_fallback for w in self._workers)
        total = frames + fallbacks
        return {
            "frames_shm": float(frames),
            "frames_fallback": float(fallbacks),
            "control_pickle": float(
                sum(w.wire.control_pickle for w in self._workers)
            ),
            "fallback_rate": (fallbacks / total) if total else 0.0,
        }

    # ------------------------------------------------------------------
    # Funnel surface (what coalescer / topology call)
    # ------------------------------------------------------------------

    def offer(self, rec: Recommendation, now: float) -> PushNotification | None:
        """Route one candidate to its recipient's shard."""
        shard = self.shard_of(rec.recipient)
        if self._pipelines is not None:
            if self.serving is not None:
                self.serving.shards[shard].ingest_released([rec], now)
            notification = self._pipelines[shard].offer(rec, now)
            if notification is not None and self.serving_tap is not None:
                self.serving_tap([notification], now)
            return notification
        worker = self._workers[shard]
        if worker.dead or not self._post_message(worker, ("offer", rec, now)):
            self.notifications_lost_shards += 1
            return None
        if self.serving is not None:
            self.serving.shards[shard].posted_updates += 1
        raw = self._receive(worker)
        if raw is None:
            self.notifications_lost_shards += 1
            return None
        self._stats_cache[worker.key] = raw[2]
        if raw[1] is not None and self.serving_tap is not None:
            self.serving_tap([raw[1]], now)
        return raw[1]

    def offer_all(
        self, recs: list[Recommendation], now: float
    ) -> list[PushNotification]:
        """Offer boxed candidates arriving together; returns deliveries."""
        return self.offer_batch(
            RecommendationBatch.from_recommendations(recs), now
        )

    def offer_batch(
        self, batch: RecommendationBatch, now: float
    ) -> list[PushNotification]:
        """Fan a columnar batch out across the shards and gather survivors.

        Same survivor multiset and summed funnel counts as one unsharded
        ``offer_batch``; delivery order is shard-major.  Under the process
        transport every shard receives its slice before any reply is
        awaited, so the funnels run concurrently.
        """
        if len(batch) == 0:
            return []
        shards = split_batch_by_shard(batch, self.num_shards)
        if self._pipelines is not None:
            delivered: list[PushNotification] = []
            for shard, (pipeline, shard_batch) in enumerate(
                zip(self._pipelines, shards)
            ):
                if len(shard_batch):
                    if self.serving is not None:
                        self.serving.shards[shard].ingest_batch(shard_batch, now)
                    delivered.extend(pipeline.offer_batch(shard_batch, now))
            if delivered and self.serving_tap is not None:
                self.serving_tap(delivered, now)
            return delivered
        submitted: list[tuple[WorkerHandle, int]] = []
        for worker, shard_batch in zip(self._workers, shards):
            if not len(shard_batch):
                continue
            if worker.dead or not worker.process.is_alive():
                worker.dead = True
                self.notifications_lost_shards += len(shard_batch)
                continue
            if not self._post_batch(
                worker, encode_recommendation_batch(shard_batch), now
            ):
                self.notifications_lost_shards += len(shard_batch)
                continue
            if self.serving is not None:
                self.serving.shards[worker.key].posted_updates += 1
            submitted.append((worker, len(shard_batch)))
        delivered = []
        for worker, shard_candidates in submitted:
            raw = self._receive(worker)
            if raw is None:
                # The loss ledger counts *candidates* in every path, so a
                # mid-batch death charges the whole submitted slice.
                self.notifications_lost_shards += shard_candidates
                continue
            self._stats_cache[worker.key] = raw[2]
            delivered.extend(raw[1])
        if delivered and self.serving_tap is not None:
            self.serving_tap(delivered, now)
        return delivered

    # ------------------------------------------------------------------
    # Aggregated accounting
    # ------------------------------------------------------------------

    def funnel_totals(self) -> dict[str, int]:
        """Per-stage funnel counts summed across shards (key for key)."""
        totals: dict[str, int] = {}
        for stages, _delivered in self._shard_stats():
            for key, value in stages.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def delivered_total(self) -> int:
        """Notifications delivered across all shards."""
        return sum(delivered for _stages, delivered in self._shard_stats())

    def reduction_ratio(self) -> float:
        """Raw candidates per delivered push, aggregated over shards."""
        totals = self.funnel_totals()
        delivered = totals.get("delivered", 0)
        if delivered == 0:
            return float("inf")
        return totals.get("raw", 0) / delivered

    def _shard_stats(self) -> list[tuple[dict[str, int], int]]:
        if self._pipelines is not None:
            return [
                (dict(p.funnel.stages), p.notifier.delivered_total)
                for p in self._pipelines
            ]
        for worker in self._workers:
            if worker.dead or not worker.process.is_alive():
                # Dead shard: its history stays in the aggregates via the
                # last reply's cached stats.
                worker.dead = True
                continue
            if not self._post_message(worker, ("stats",)):
                continue
            raw = self._receive(worker)
            if raw is not None:
                self._stats_cache[worker.key] = raw[1]
        return list(self._stats_cache.values())

    # ------------------------------------------------------------------
    # Worker plumbing (shared with the cluster transport: util/procpool)
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Stop, join, and reap shard workers (idempotent).

        ``stop_workers`` pins the serving readers' final generation
        before each stop and destroys each shard's rings after its join;
        the serving reclamation then unlinks any data generation a
        crashed writer left behind (deterministic names — no handle
        needed), and the final sweep backstops control/ring segments
        whose worker never spawned.  Readers keep answering from their
        pinned mappings after all of it.
        """
        if self._closed:
            return
        self._closed = True
        stop_workers(self._workers)
        serving = getattr(self, "serving", None)
        if serving is not None and self._pipelines is None:
            serving.reclaim_segments()
        sweep_segments(self._segment_names)

    def __enter__(self) -> "ShardedDeliveryPipeline":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort backstop; close() is the API
        try:
            self.close()
        except Exception:
            pass
