"""Fatigue control: a per-user cap on pushes per rolling window.

Even perfectly relevant notifications drive users to disable pushes when
there are too many of them; production "controls for fatigue".  We model
the standard mechanism: at most ``max_per_window`` deliveries per user per
rolling ``window`` seconds.

Two interchangeable storage backends hold the per-user histories:

* ``backend="table"`` (default) — an open-addressing numpy table keyed by
  recipient, holding a fixed ``max_per_window``-wide timestamp ring per
  slot (the rolling window never needs more entries than the cap).
  ``allow_mask`` charges a whole batch with a handful of vectorized
  passes; dead users are evicted by horizon-based compaction when the
  table needs room.  Assumes a non-decreasing ``now`` sequence (true on
  the streaming path).
* ``backend="dict"`` — the reference ``recipient -> deque[float]`` map.
  Equivalence between the two backends is enforced by
  ``tests/test_pair_table.py``.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.core.recommendation import CandidateColumns, Recommendation
from repro.delivery.pairtable import Int64KeyTable
from repro.util.validation import require, require_positive

FATIGUE_BACKENDS = ("table", "dict")


class FatigueFilter:
    """Rolling-window rate limit per recipient."""

    def __init__(
        self,
        max_per_window: int = 2,
        window: float = 86_400.0,
        backend: str = "table",
    ) -> None:
        """Create the filter.

        Args:
            max_per_window: deliveries allowed per user per window.
            window: rolling window length in seconds (default one day).
            backend: ``"table"`` for the numpy ring table (default) or
                ``"dict"`` for the reference deque map.
        """
        require_positive(max_per_window, "max_per_window")
        require_positive(window, "window")
        require(
            backend in FATIGUE_BACKENDS,
            f"backend must be one of {FATIGUE_BACKENDS}, got {backend!r}",
        )
        self.max_per_window = max_per_window
        self.window = window
        self.backend = backend
        if backend == "dict":
            self._sent: dict[int, deque[float]] = {}
        else:
            self._table = Int64KeyTable(
                {
                    "times": (np.float64, max_per_window),
                    "head": (np.int32, 0),
                    "count": (np.int32, 0),
                }
            )

    @property
    def name(self) -> str:
        """Funnel-stage label."""
        return "fatigue"

    def allow(self, rec: Recommendation, now: float) -> bool:
        """True iff the recipient is under their cap; counts the delivery."""
        if self.backend == "dict":
            return self._allow_dict(rec, now)
        table = self._table
        cap = self.max_per_window
        cutoff = now - self.window
        slot = table.find(rec.recipient)
        if slot < 0:
            table.reserve(1, keep=lambda: self._live_slots(cutoff))
            slot, _ = table.upsert(rec.recipient)
        columns = table.columns
        times = columns["times"]
        head = int(columns["head"][slot])
        count = int(columns["count"][slot])
        # Prune from the oldest end, stopping at the first live entry —
        # the exact deque ``popleft`` sequence of the dict backend.
        while count and times[slot, head] < cutoff:
            head = (head + 1) % cap
            count -= 1
        if count >= cap:
            columns["head"][slot] = head
            columns["count"][slot] = count
            return False
        times[slot, (head + count) % cap] = now
        columns["head"][slot] = head
        columns["count"][slot] = count + 1
        return True

    def _allow_dict(self, rec: Recommendation, now: float) -> bool:
        history = self._sent.get(rec.recipient)
        if history is None:
            history = deque()
            self._sent[rec.recipient] = history
        cutoff = now - self.window
        while history and history[0] < cutoff:
            history.popleft()
        if len(history) >= self.max_per_window:
            return False
        history.append(now)
        return True

    def allow_mask(self, columns: CandidateColumns, now: float) -> np.ndarray:
        """Batched :meth:`allow`: per-candidate decisions in order.

        All candidates in one call share ``now``, so per recipient the
        sequential semantics collapse to: prune once, then admit the
        first ``cap - live`` occurrences and reject the rest.  The table
        backend computes that shape fully vectorized (one ``np.unique``
        over recipients, one bulk probe, ring updates as a few masked
        writes); the dict backend runs the reference sequential loop.
        """
        if self.backend == "dict":
            return self._allow_mask_dict(columns, now)
        recipients = columns.recipients
        n = len(recipients)
        out = np.empty(n, dtype=bool)
        if n == 0:
            return out
        distinct, inverse, occurrences = np.unique(
            recipients, return_inverse=True, return_counts=True
        )
        table = self._table
        cap = self.max_per_window
        cutoff = now - self.window
        keys = distinct.astype(np.uint64)
        slots = table.lookup(keys)
        found = slots >= 0
        alive = np.zeros(len(distinct), dtype=np.int64)
        table_columns = table.columns
        if found.any():
            found_slots = slots[found]
            times = table_columns["times"]
            head = table_columns["head"][found_slots].astype(np.int64)
            count = table_columns["count"][found_slots].astype(np.int64)
            # Leading-expired prune, vectorized over the (tiny) ring width.
            pruned = np.zeros(len(found_slots), dtype=np.int64)
            leading = np.ones(len(found_slots), dtype=bool)
            for j in range(cap):
                stamp = times[found_slots, (head + j) % cap]
                expired = leading & (j < count) & (stamp < cutoff)
                pruned += expired
                leading = expired
            head = (head + pruned) % cap
            count = count - pruned
            alive[found] = count
        budget = cap - alive
        granted = np.minimum(budget, occurrences)
        # Row i passes iff it is among the first `granted` occurrences of
        # its recipient: rank rows within each recipient in arrival order.
        order = np.argsort(inverse, kind="stable")
        grouped = inverse[order]
        starts = np.flatnonzero(
            np.r_[True, grouped[1:] != grouped[:-1]]
        ) if n else np.empty(0, dtype=np.int64)
        rank = np.arange(n) - np.repeat(starts, occurrences)
        out[order] = rank < granted[grouped]
        if found.any():
            # Charge the admitted deliveries: append `now` x granted.
            grants_found = granted[found]
            times = table_columns["times"]
            for j in range(int(grants_found.max(initial=0))):
                charged = grants_found > j
                positions = (head[charged] + count[charged] + j) % cap
                times[found_slots[charged], positions] = now
            table_columns["head"][found_slots] = head
            table_columns["count"][found_slots] = count + grants_found
        missing = ~found
        num_missing = int(missing.sum())
        if num_missing:
            table.reserve(num_missing, keep=lambda: self._live_slots(cutoff))
            new_slots = table.insert(keys[missing])
            table_columns = table.columns  # reserve may have reallocated
            grants_missing = granted[missing]
            for j in range(int(grants_missing.max(initial=0))):
                charged = grants_missing > j
                table_columns["times"][new_slots[charged], j] = now
            table_columns["count"][new_slots] = grants_missing
        return out

    def _allow_mask_dict(self, columns: CandidateColumns, now: float) -> np.ndarray:
        recipients = columns.recipients_list()
        out = np.empty(len(recipients), dtype=bool)
        sent = self._sent
        cutoff = now - self.window
        cap = self.max_per_window
        for i, recipient in enumerate(recipients):
            history = sent.get(recipient)
            if history is None:
                history = deque()
                sent[recipient] = history
            while history and history[0] < cutoff:
                history.popleft()
            if len(history) >= cap:
                out[i] = False
            else:
                history.append(now)
                out[i] = True
        return out

    def state_arrays(self) -> dict[str, np.ndarray]:
        """The per-user histories as owned arrays (for incremental
        snapshots, table backend only)."""
        require(
            self.backend == "table",
            "snapshots require backend='table' (the dict backend is the "
            "in-memory reference)",
        )
        return self._table.state_arrays()

    def load_state(self, arrays: dict[str, np.ndarray]) -> None:
        """Replace the histories with a :meth:`state_arrays` payload
        (table backend only)."""
        require(
            self.backend == "table",
            "snapshots require backend='table' (the dict backend is the "
            "in-memory reference)",
        )
        self._table = Int64KeyTable(
            {
                "times": (np.float64, self.max_per_window),
                "head": (np.int32, 0),
                "count": (np.int32, 0),
            }
        )
        self._table.load_state_arrays(arrays)

    def save_npz(self, path) -> None:
        """Snapshot the per-user histories so a delivery-tier restart
        keeps charging against the same daily budgets (table backend
        only)."""
        require(
            self.backend == "table",
            "snapshots require backend='table' (the dict backend is the "
            "in-memory reference)",
        )
        self._table.save_npz(path)

    @classmethod
    def from_snapshot(
        cls,
        path,
        max_per_window: int = 2,
        window: float = 86_400.0,
    ) -> "FatigueFilter":
        """A table-backend filter warmed from a :meth:`save_npz` snapshot.

        *max_per_window* and *window* are configuration, not state — pass
        the values the saved filter ran with (the ring width is checked
        against the snapshot, so a mismatched cap fails loudly).
        """
        out = cls(
            max_per_window=max_per_window, window=window, backend="table"
        )
        out._table = Int64KeyTable.from_snapshot(
            path,
            {
                "times": (np.float64, max_per_window),
                "head": (np.int32, 0),
                "count": (np.int32, 0),
            },
        )
        return out

    def _live_slots(self, cutoff: float) -> np.ndarray:
        """Compaction keep-mask: slots with any charge still in window."""
        table = self._table
        cap = self.max_per_window
        times = table.columns["times"]
        head = table.columns["head"].astype(np.int64)
        count = table.columns["count"].astype(np.int64)
        rows = np.arange(table.capacity)
        live = np.zeros(table.capacity, dtype=bool)
        for j in range(cap):
            stamp = times[rows, (head + j) % cap]
            live |= (j < count) & (stamp >= cutoff)
        return live

    def sent_in_window(self, user: int, now: float) -> int:
        """Deliveries charged to *user* within the current window."""
        cutoff = now - self.window
        if self.backend == "dict":
            history = self._sent.get(user)
            if not history:
                return 0
            return sum(1 for t in history if t >= cutoff)
        slot = self._table.find(user)
        if slot < 0:
            return 0
        columns = self._table.columns
        cap = self.max_per_window
        head = int(columns["head"][slot])
        count = int(columns["count"][slot])
        times = columns["times"]
        return sum(
            1
            for j in range(count)
            if times[slot, (head + j) % cap] >= cutoff
        )
