"""Fatigue control: a per-user cap on pushes per rolling window.

Even perfectly relevant notifications drive users to disable pushes when
there are too many of them; production "controls for fatigue".  We model
the standard mechanism: at most ``max_per_window`` deliveries per user per
rolling ``window`` seconds.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.core.recommendation import CandidateColumns, Recommendation
from repro.util.validation import require_positive


class FatigueFilter:
    """Rolling-window rate limit per recipient."""

    def __init__(self, max_per_window: int = 2, window: float = 86_400.0) -> None:
        """Create the filter.

        Args:
            max_per_window: deliveries allowed per user per window.
            window: rolling window length in seconds (default one day).
        """
        require_positive(max_per_window, "max_per_window")
        require_positive(window, "window")
        self.max_per_window = max_per_window
        self.window = window
        self._sent: dict[int, deque[float]] = {}

    @property
    def name(self) -> str:
        """Funnel-stage label."""
        return "fatigue"

    def allow(self, rec: Recommendation, now: float) -> bool:
        """True iff the recipient is under their cap; counts the delivery."""
        history = self._sent.get(rec.recipient)
        if history is None:
            history = deque()
            self._sent[rec.recipient] = history
        cutoff = now - self.window
        while history and history[0] < cutoff:
            history.popleft()
        if len(history) >= self.max_per_window:
            return False
        history.append(now)
        return True

    def allow_mask(self, columns: CandidateColumns, now: float) -> np.ndarray:
        """Batched :meth:`allow`: per-candidate decisions in order.

        The rolling windows are stateful per recipient (an accept charges
        the budget the next candidate sees), so decisions run as one loop
        over the decoded recipient list — the same sequence of window
        prunes, cap checks, and charges as per-candidate calls, without the
        per-candidate boxing and dispatch.
        """
        recipients = columns.recipients_list()
        out = np.empty(len(recipients), dtype=bool)
        sent = self._sent
        cutoff = now - self.window
        cap = self.max_per_window
        for i, recipient in enumerate(recipients):
            history = sent.get(recipient)
            if history is None:
                history = deque()
                sent[recipient] = history
            while history and history[0] < cutoff:
                history.popleft()
            if len(history) >= cap:
                out[i] = False
            else:
                history.append(now)
                out[i] = True
        return out

    def sent_in_window(self, user: int, now: float) -> int:
        """Deliveries charged to *user* within the current window."""
        history = self._sent.get(user)
        if not history:
            return 0
        cutoff = now - self.window
        return sum(1 for t in history if t >= cutoff)
