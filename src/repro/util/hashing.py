"""Shared integer-hashing primitives: splitmix64, scalar and columnar.

The same mix is used everywhere an id needs a uniform 64-bit scramble —
the waking-hours timezone assignment and the delivery pair tables — so
the scalar and vectorized call sites are guaranteed to agree bit for bit
(``uint64`` arithmetic wraps modulo 2**64, exactly the scalar masking).
"""

from __future__ import annotations

import numpy as np

MASK64 = (1 << 64) - 1

_SM64_GAMMA = 0x9E3779B97F4A7C15
_SM64_MIX1 = 0xBF58476D1CE4E5B9
_SM64_MIX2 = 0x94D049BB133111EB


def splitmix64(value: int) -> int:
    """One splitmix64 finalization round over a (python int) 64-bit value."""
    value = (value + _SM64_GAMMA) & MASK64
    value = ((value ^ (value >> 30)) * _SM64_MIX1) & MASK64
    value = ((value ^ (value >> 27)) * _SM64_MIX2) & MASK64
    return value ^ (value >> 31)


def splitmix64_array(values: np.ndarray) -> np.ndarray:
    """Vectorised :func:`splitmix64` over a ``uint64`` column.

    Produces the scalar version's mix bit for bit, element for element.
    """
    values = values + np.uint64(_SM64_GAMMA)
    values = (values ^ (values >> np.uint64(30))) * np.uint64(_SM64_MIX1)
    values = (values ^ (values >> np.uint64(27))) * np.uint64(_SM64_MIX2)
    return values ^ (values >> np.uint64(31))
