"""Argument validation helpers.

The library validates its public entry points eagerly so that configuration
mistakes (a negative time window, a zero partition count) fail at construction
time with a clear message instead of surfacing later as silent misbehaviour
deep inside the detection loop.
"""

from __future__ import annotations

from typing import Any


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError`` with *message* unless *condition* holds."""
    if not condition:
        raise ValueError(message)


def require_positive(value: float, name: str) -> None:
    """Raise ``ValueError`` unless ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def require_non_negative(value: float, name: str) -> None:
    """Raise ``ValueError`` unless ``value >= 0``."""
    if not value >= 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")


def require_probability(value: float, name: str) -> None:
    """Raise ``ValueError`` unless ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value!r}")


def require_type(value: Any, expected: type | tuple[type, ...], name: str) -> None:
    """Raise ``TypeError`` unless ``value`` is an instance of *expected*."""
    if not isinstance(value, expected):
        expected_names = (
            expected.__name__
            if isinstance(expected, type)
            else " | ".join(t.__name__ for t in expected)
        )
        raise TypeError(
            f"{name} must be {expected_names}, got {type(value).__name__}"
        )
