"""Wall-clock measurement helpers for the benchmark harness."""

from __future__ import annotations

import time


class Stopwatch:
    """A restartable wall-clock stopwatch based on ``time.perf_counter``.

    Usable directly or as a context manager::

        with Stopwatch() as watch:
            do_work()
        print(watch.elapsed)
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self._elapsed = 0.0

    def start(self) -> "Stopwatch":
        """Start (or resume) timing."""
        if self._start is None:
            self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop timing and return total elapsed seconds."""
        if self._start is not None:
            self._elapsed += time.perf_counter() - self._start
            self._start = None
        return self._elapsed

    def reset(self) -> None:
        """Zero the accumulated time and stop."""
        self._start = None
        self._elapsed = 0.0

    @property
    def running(self) -> bool:
        """True while the stopwatch is started."""
        return self._start is not None

    @property
    def elapsed(self) -> float:
        """Elapsed seconds so far (includes the running interval, if any)."""
        if self._start is None:
            return self._elapsed
        return self._elapsed + (time.perf_counter() - self._start)

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def format_duration(seconds: float) -> str:
    """Render a duration with an appropriate unit (ns / us / ms / s)."""
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds < 1e-6:
        return f"{seconds * 1e9:.1f}ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    if seconds < 120.0:
        return f"{seconds:.2f}s"
    return f"{seconds / 60.0:.1f}min"
