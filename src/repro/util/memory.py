"""Memory accounting and back-of-the-envelope extrapolation.

The paper rules out the per-A two-hop Bloom-filter design with "a rough
calculation"; this module provides the machinery to make that calculation
concrete — measured bytes for the structures we actually build, plus
extrapolation from laptop-scale synthetic graphs to Twitter scale
(O(10^8) vertices, O(10^10) edges).
"""

from __future__ import annotations

import sys
from array import array
from dataclasses import dataclass, field


#: Approximate bytes per element when ids are stored in a compact
#: ``array('q')`` / int64 numpy buffer, which is how the S structure keeps
#: its sorted adjacency lists.
BYTES_PER_PACKED_ID = 8


def approx_bytes_of_int_list(values: object) -> int:
    """Return the approximate heap footprint of a container of ints.

    Compact buffers (``array``, bytes-like) report their true buffer size;
    generic containers fall back to ``sys.getsizeof`` of the container plus a
    per-element estimate for boxed Python ints.
    """
    if isinstance(values, (array, bytes, bytearray)):
        # getsizeof on compact buffers already includes the payload.
        return sys.getsizeof(values)
    size = sys.getsizeof(values)
    try:
        length = len(values)  # type: ignore[arg-type]
    except TypeError:
        return size
    # A small boxed Python int costs ~28 bytes plus the container's pointer.
    return size + length * 28


def format_bytes(num_bytes: float) -> str:
    """Render a byte count with binary units (KiB / MiB / GiB / TiB / PiB)."""
    if num_bytes < 0:
        return "-" + format_bytes(-num_bytes)
    units = ["B", "KiB", "MiB", "GiB", "TiB", "PiB"]
    value = float(num_bytes)
    for unit in units:
        if value < 1024.0 or unit == units[-1]:
            if unit == "B":
                return f"{value:.0f}{unit}"
            return f"{value:.2f}{unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


@dataclass
class MemoryEstimate:
    """A measured memory figure plus the assumptions used to extrapolate it.

    Attributes:
        measured_bytes: bytes actually observed at the measured scale.
        measured_scale: the driving quantity at measurement time
            (e.g. number of users).
        notes: free-form assumption log, one entry per adjustment.
    """

    measured_bytes: float
    measured_scale: float
    notes: list[str] = field(default_factory=list)

    def extrapolate(self, target_scale: float) -> float:
        """Linearly extrapolate the measurement to *target_scale*.

        Linear scaling is the conservative choice for per-user structures
        (each additional user brings its own adjacency/Bloom payload).
        """
        if self.measured_scale <= 0:
            raise ValueError("measured_scale must be positive to extrapolate")
        factor = target_scale / self.measured_scale
        return self.measured_bytes * factor

    def describe(self, target_scale: float) -> str:
        """Human-readable extrapolation line for reports."""
        projected = self.extrapolate(target_scale)
        return (
            f"{format_bytes(self.measured_bytes)} at scale "
            f"{self.measured_scale:g} -> {format_bytes(projected)} at scale "
            f"{target_scale:g}"
        )
