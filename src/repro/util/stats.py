"""Streaming statistics used by the metrics layer and the benchmarks.

``OnlineStats`` implements Welford's algorithm for numerically-stable running
mean/variance.  ``PercentileTracker`` keeps an exact sample buffer up to a
bound and falls back to reservoir sampling beyond it, which is accurate enough
for the latency distributions reported in the paper (median / p99 over tens of
thousands of events) while keeping memory constant.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.util.validation import require, require_positive


def percentile(sorted_values: list[float], q: float) -> float:
    """Return the *q*-th percentile (0..100) of an already-sorted list.

    Uses linear interpolation between closest ranks, matching
    ``numpy.percentile``'s default behaviour, so tests can cross-check
    against numpy on small inputs.
    """
    require(0.0 <= q <= 100.0, f"percentile q must be in [0, 100], got {q}")
    require(len(sorted_values) > 0, "percentile of empty data is undefined")
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = (q / 100.0) * (len(sorted_values) - 1)
    lower = math.floor(rank)
    upper = math.ceil(rank)
    if lower == upper:
        return sorted_values[lower]
    weight = rank - lower
    return sorted_values[lower] * (1.0 - weight) + sorted_values[upper] * weight


class OnlineStats:
    """Running count / mean / variance / min / max via Welford's algorithm."""

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        """Fold one observation into the running statistics."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def variance(self) -> float:
        """Population variance (0.0 until two observations arrive)."""
        if self.count < 2:
            return 0.0
        return self._m2 / self.count

    @property
    def stddev(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    def merge(self, other: "OnlineStats") -> "OnlineStats":
        """Return a new ``OnlineStats`` combining *self* and *other*.

        Uses the parallel-variance (Chan et al.) merge so partition-local
        statistics can be gathered by a broker without losing precision.
        """
        merged = OnlineStats()
        merged.count = self.count + other.count
        if merged.count == 0:
            return merged
        delta = other.mean - self.mean
        merged.mean = self.mean + delta * other.count / merged.count
        merged._m2 = (
            self._m2
            + other._m2
            + delta * delta * self.count * other.count / merged.count
        )
        merged.minimum = min(self.minimum, other.minimum)
        merged.maximum = max(self.maximum, other.maximum)
        return merged


class PercentileTracker:
    """Collect observations and answer percentile queries.

    Keeps every observation up to ``max_samples``; beyond that it switches to
    reservoir sampling (Vitter's algorithm R) so memory stays bounded while
    quantile estimates remain unbiased.
    """

    def __init__(self, max_samples: int = 100_000, seed: int = 0) -> None:
        require_positive(max_samples, "max_samples")
        self._max_samples = max_samples
        self._samples: list[float] = []
        self._seen = 0
        self._rng = random.Random(seed)
        self.stats = OnlineStats()

    def add(self, value: float) -> None:
        """Record one observation."""
        self._seen += 1
        self.stats.add(value)
        if len(self._samples) < self._max_samples:
            self._samples.append(value)
            return
        slot = self._rng.randrange(self._seen)
        if slot < self._max_samples:
            self._samples[slot] = value

    def __len__(self) -> int:
        return self._seen

    @property
    def is_exact(self) -> bool:
        """True while no observation has been discarded."""
        return self._seen <= self._max_samples

    def percentile(self, q: float) -> float:
        """Return the *q*-th percentile (0..100) of observations so far."""
        require(self._seen > 0, "no observations recorded")
        return percentile(sorted(self._samples), q)

    def median(self) -> float:
        """Convenience alias for the 50th percentile."""
        return self.percentile(50.0)

    def snapshot(self) -> dict[str, float]:
        """Summary dict: count, mean, min, max, p50, p90, p99."""
        if self._seen == 0:
            return {"count": 0}
        ordered = sorted(self._samples)
        return {
            "count": float(self._seen),
            "mean": self.stats.mean,
            "min": self.stats.minimum,
            "max": self.stats.maximum,
            "p50": percentile(ordered, 50.0),
            "p90": percentile(ordered, 90.0),
            "p99": percentile(ordered, 99.0),
        }


@dataclass
class Description:
    """Plain summary of a data set, as returned by :func:`describe`."""

    count: int
    mean: float
    stddev: float
    minimum: float
    p50: float
    p90: float
    p99: float
    maximum: float
    extras: dict[str, float] = field(default_factory=dict)


def describe(values: list[float]) -> Description:
    """Return a :class:`Description` of *values* (must be non-empty)."""
    require(len(values) > 0, "describe() of empty data is undefined")
    ordered = sorted(values)
    stats = OnlineStats()
    for value in values:
        stats.add(value)
    return Description(
        count=stats.count,
        mean=stats.mean,
        stddev=stats.stddev,
        minimum=ordered[0],
        p50=percentile(ordered, 50.0),
        p90=percentile(ordered, 90.0),
        p99=percentile(ordered, 99.0),
        maximum=ordered[-1],
    )
