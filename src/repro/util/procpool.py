"""Shared worker-process plumbing for the cluster and delivery transports.

Both the partition transport (:mod:`repro.cluster.transport`) and the
sharded delivery fan-out (:mod:`repro.delivery.sharded`) host stateful
endpoints in ``multiprocessing`` workers behind request/reply queues.
The lifecycle edge cases are identical — and subtle enough that they must
not be maintained twice:

* **bootstrap without parent retention** — the worker's (large) state is
  handed over in a one-shot holder list that the parent clears right
  after ``start()``: under ``fork`` the child copied it at fork time,
  under ``spawn`` it was pickled synchronously during ``start()``, so
  the parent never keeps P full state copies alive for the run.
* **death detection at gather** — a reply that will never come (worker
  died mid-batch) is detected by polling liveness between short
  timeouts; a reply truncated mid-write (worker killed inside ``put``)
  surfaces as a deserialization error and is treated the same way.
* **graceful-then-forceful shutdown** — a stop message and bounded join
  per worker, then terminate, so a wedged worker can never hang the
  parent.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import sys
from typing import Callable

#: Seconds between liveness checks while a gather waits on a reply.
GATHER_POLL_SECONDS = 0.1

#: Seconds a graceful close waits per worker before terminating it.
JOIN_TIMEOUT_SECONDS = 5.0


def default_start_method() -> str:
    """``fork`` on Linux (zero-copy bootstrap), the platform default
    elsewhere.

    macOS offers ``fork`` but CPython defaults it to ``spawn`` for a
    reason: forking a parent that has loaded system frameworks is
    crash-prone, and a worker that aborts on its first library call
    would surface here as every partition silently losing its events.
    """
    if sys.platform == "linux":
        return "fork"
    return multiprocessing.get_start_method()


class WorkerHandle:
    """Parent-side handle on one worker process."""

    __slots__ = (
        "key", "process", "requests", "replies", "dead", "wire", "arena",
    )

    def __init__(self, key, process, requests, replies) -> None:
        #: Caller-chosen identity (partition id, shard index, ...).
        self.key = key
        self.process = process
        self.requests = requests
        self.replies = replies
        #: Set once the worker is known dead; never unset (no retries).
        self.dead = False
        #: Optional shared-memory ring pair (:class:`repro.cluster.shm
        #: .RingPair`).  When set, the ring is the worker's sole message
        #: *ordering* channel: a stop must travel as a ring marker (a
        #: queue-only stop would never be seen), and ``stop_workers``
        #: destroys the segments after the join — dead-worker slab
        #: reclamation, so a crashed worker never leaks ``/dev/shm``.
        self.wire = None
        #: Optional parent-side reader of a serving arena the worker
        #: writes (:class:`repro.serving.cache.ServingCacheReader`).
        #: ``stop_workers`` pins its current generation *before* posting
        #: the stop, so the mapping outlives the worker's unlink and
        #: post-shutdown reads (summaries, snapshots) stay valid.
        self.arena = None


def _worker_bootstrap(target, holder, requests, replies) -> None:
    """Run *target* on the state popped from its one-shot holder."""
    target(holder.pop(), requests, replies)


def spawn_worker(
    context,
    key,
    target: Callable,
    state,
    name: str,
) -> WorkerHandle:
    """Start one daemon worker running ``target(state, requests, replies)``.

    *state* travels in a one-shot holder the parent empties immediately
    after ``start()`` returns — by then the child owns its copy (fork) or
    the pickled bytes are already written (spawn) — so the parent's only
    live references to the worker's state are the queues.
    """
    requests = context.Queue()
    replies = context.Queue()
    holder = [state]
    process = context.Process(
        target=_worker_bootstrap,
        args=(target, holder, requests, replies),
        daemon=True,
        name=name,
    )
    process.start()
    holder.clear()
    return WorkerHandle(key, process, requests, replies)


def poll_queue(q, is_peer_alive: Callable[[], bool]) -> tuple | None:
    """One message from *q*, or None once the peer is known dead.

    The generic form of :func:`receive_reply`: polls with a short
    timeout, checks peer liveness between polls, and performs one final
    non-blocking drain to cover a message buffered (or mid-flush on the
    feeder thread) before the peer died.  Workers use it to collect a
    queue payload a ring marker announced — the marker may commit before
    the queue feeder flushes, so an unconditional blocking ``get`` could
    hang forever on a dead parent.
    """
    while True:
        try:
            return q.get(timeout=GATHER_POLL_SECONDS)
        except queue_module.Empty:
            if not is_peer_alive():
                try:  # message may have been buffered before the death
                    return q.get_nowait()
                except Exception:  # Empty, or a truncated frame
                    return None
        except Exception:
            # Half-written frame (peer terminated mid-put).
            return None


def receive_reply(worker: WorkerHandle) -> tuple | None:
    """One reply from *worker*, or None once it is known dead.

    Polls with a short timeout so a worker that died mid-batch (its
    reply will never come) is detected instead of hanging the caller.
    A final non-blocking drain covers the race where the worker replied
    and *then* died; a worker killed mid-*write* leaves a truncated
    frame on the pipe, which surfaces as a deserialization error out of
    ``get`` and is treated exactly like no reply at all.
    """
    reply = poll_queue(worker.replies, worker.process.is_alive)
    if reply is None:
        worker.dead = True
    return reply


def stop_workers(workers: list[WorkerHandle]) -> None:
    """Stop, join, and reap *workers*: graceful first, then forceful.

    Workers with a shared-memory wire get their stop as a ring marker
    (the ring orders all their messages) and have their segments
    destroyed after the join — including workers that died mid-batch, so
    abnormal exits reclaim the slabs too.
    """
    for worker in workers:
        if worker.arena is not None:
            try:  # keep the final generation mapped past the unlink
                worker.arena.pin()
            except Exception:
                pass
        if worker.dead or not worker.process.is_alive():
            continue
        try:
            if worker.wire is not None:
                worker.wire.post_control(worker.requests, ("stop",))
            else:
                worker.requests.put(("stop",))
        except (ValueError, OSError):  # queue already torn down
            pass
    for worker in workers:
        worker.process.join(timeout=JOIN_TIMEOUT_SECONDS)
        if worker.process.is_alive():
            worker.process.terminate()
            worker.process.join(timeout=JOIN_TIMEOUT_SECONDS)
        if worker.wire is not None:
            worker.wire.destroy()
        worker.requests.close()
        worker.replies.close()
