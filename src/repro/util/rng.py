"""Deterministic random number generation for reproducible experiments.

Every stochastic component in the library (graph generators, stream
generators, latency models, reservoir samplers) takes an explicit seed and
derives its generator through :func:`make_rng`, so a whole experiment is a
pure function of its configuration.
"""

from __future__ import annotations

import random
import zlib


def derive_seed(base_seed: int, *labels: object) -> int:
    """Derive a stable child seed from *base_seed* and a label path.

    Mixing through CRC32 of the label string keeps children independent
    enough for simulation purposes while staying fully deterministic across
    platforms and Python versions (unlike ``hash()``).
    """
    text = ":".join(str(label) for label in labels)
    return (base_seed * 1_000_003 + zlib.crc32(text.encode("utf-8"))) % (2**63)


def make_rng(seed: int, *labels: object) -> random.Random:
    """Return a ``random.Random`` seeded from *seed* and optional *labels*.

    Passing distinct labels yields independent streams, so e.g. the graph
    generator and the latency model of one experiment never share a stream
    even when configured with the same top-level seed.
    """
    if labels:
        return random.Random(derive_seed(seed, *labels))
    return random.Random(seed)
