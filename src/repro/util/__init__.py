"""Shared utilities: validation, statistics, timing, memory accounting.

These helpers are deliberately free of any domain knowledge so that every
other subpackage (graph substrates, cluster, simulator, delivery funnel) can
depend on them without creating import cycles.
"""

from repro.util.validation import (
    require,
    require_non_negative,
    require_positive,
    require_probability,
    require_type,
)
from repro.util.stats import (
    OnlineStats,
    PercentileTracker,
    describe,
    percentile,
)
from repro.util.timer import Stopwatch, format_duration
from repro.util.memory import (
    approx_bytes_of_int_list,
    format_bytes,
    MemoryEstimate,
)
from repro.util.rng import make_rng

__all__ = [
    "require",
    "require_non_negative",
    "require_positive",
    "require_probability",
    "require_type",
    "OnlineStats",
    "PercentileTracker",
    "describe",
    "percentile",
    "Stopwatch",
    "format_duration",
    "approx_bytes_of_int_list",
    "format_bytes",
    "MemoryEstimate",
    "make_rng",
]
