"""Declarative motif specifications: patterns over the dynamic graph.

A :class:`MotifSpec` is a small pattern graph.  Vertices are variables;
edges are either **static** (must exist in the offline follow snapshot, S)
or **dynamic** (created live within a freshness window, D).  A *count
threshold* demands at least ``k`` distinct bindings of one variable, an
*emit clause* names who is notified about what, and *forbid* constraints
express NOT EXISTS conditions (e.g. "the recipient does not already follow
the candidate").

The paper's diamond, in this language::

    vertices: a, b, c
    edges:    a -[static]-> b
              b -[dynamic, within tau]-> c
    count:    b >= k
    emit:     notify a about c
    forbid:   a -[static]-> c

The planner (:mod:`repro.motif.planner`) accepts the fragment of this
language the (S, D) infrastructure can execute incrementally and rejects
anything else with :class:`UnsupportedMotifError` — precise errors being
half the value of a declarative layer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.events import ActionType
from repro.util.validation import require, require_positive


class UnsupportedMotifError(ValueError):
    """The spec is valid but outside the executable fragment."""


class EdgeKind(enum.Enum):
    """How a pattern edge is matched."""

    STATIC = "static"    #: must exist in the offline snapshot (S)
    DYNAMIC = "dynamic"  #: created live within the freshness window (D)


@dataclass(frozen=True, slots=True)
class PatternEdge:
    """One edge of the pattern graph.

    Attributes:
        src: source variable name.
        dst: destination variable name.
        kind: static (S) or dynamic (D) matching.
        within: freshness window in seconds; required for dynamic edges,
            forbidden for static ones.
        action: restrict dynamic edges to one action type (follow /
            retweet / favorite); ``None`` accepts any.
    """

    src: str
    dst: str
    kind: EdgeKind = EdgeKind.STATIC
    within: float | None = None
    action: ActionType | None = None

    def __post_init__(self) -> None:
        require(self.src != self.dst, f"self-loop pattern edge on {self.src!r}")
        if self.kind is EdgeKind.DYNAMIC:
            if self.within is None:
                raise ValueError(f"dynamic edge {self} needs a `within` window")
            require_positive(self.within, "within")
        else:
            require(
                self.within is None,
                f"static edge {self.src}->{self.dst} cannot carry `within`",
            )
            require(
                self.action is None,
                f"static edge {self.src}->{self.dst} cannot carry `action`",
            )

    def describe(self) -> str:
        """Human-readable form for plan explanations."""
        if self.kind is EdgeKind.DYNAMIC:
            action = f", action={self.action.value}" if self.action else ""
            return f"{self.src} -[dynamic, within {self.within:g}s{action}]-> {self.dst}"
        return f"{self.src} -[static]-> {self.dst}"


@dataclass(frozen=True)
class MotifSpec:
    """A complete declarative motif.

    Attributes:
        name: identifier carried into recommendation provenance.
        vertices: all variable names used by the pattern.
        edges: the pattern edges that must exist.
        count_at_least: variable -> minimum number of distinct bindings.
        emit: ``(recipient_var, candidate_var)`` — who is told about what.
        forbid: NOT-EXISTS pattern edges (static only).
        distinct_emit: require recipient != candidate bindings.
        exclude_witnesses: never notify the fresh witnesses themselves
            (their live edge proves they already saw the candidate).
    """

    name: str
    vertices: tuple[str, ...]
    edges: tuple[PatternEdge, ...]
    count_at_least: dict[str, int] = field(default_factory=dict)
    emit: tuple[str, str] = ("a", "c")
    forbid: tuple[PatternEdge, ...] = ()
    distinct_emit: bool = True
    exclude_witnesses: bool = True

    def __post_init__(self) -> None:
        require(bool(self.name), "motif needs a name")
        require(len(self.vertices) >= 2, "motif needs at least two vertices")
        require(len(self.edges) >= 1, "motif needs at least one edge")
        known = set(self.vertices)
        require(
            len(known) == len(self.vertices),
            f"duplicate vertex names in {self.vertices}",
        )
        for edge in self.edges + self.forbid:
            for endpoint in (edge.src, edge.dst):
                require(
                    endpoint in known,
                    f"edge endpoint {endpoint!r} is not a declared vertex",
                )
        for var, k in self.count_at_least.items():
            require(var in known, f"count constraint on unknown vertex {var!r}")
            require(k >= 1, f"count threshold must be >= 1, got {k} for {var!r}")
        recipient, candidate = self.emit
        require(recipient in known, f"emit recipient {recipient!r} undeclared")
        require(candidate in known, f"emit candidate {candidate!r} undeclared")
        for edge in self.forbid:
            require(
                edge.kind is EdgeKind.STATIC,
                "forbid constraints support static edges only",
            )

    # ------------------------------------------------------------------
    # Introspection used by the planner
    # ------------------------------------------------------------------

    def dynamic_edges(self) -> list[PatternEdge]:
        """The pattern's dynamic (live-matched) edges."""
        return [e for e in self.edges if e.kind is EdgeKind.DYNAMIC]

    def static_edges(self) -> list[PatternEdge]:
        """The pattern's static (snapshot-matched) edges."""
        return [e for e in self.edges if e.kind is EdgeKind.STATIC]

    def describe(self) -> str:
        """Multi-line human-readable rendering of the whole spec."""
        lines = [f"motif {self.name}:"]
        lines += [f"  match  {edge.describe()}" for edge in self.edges]
        lines += [
            f"  count  distinct {var} >= {k}"
            for var, k in self.count_at_least.items()
        ]
        lines += [f"  forbid {edge.describe()}" for edge in self.forbid]
        recipient, candidate = self.emit
        lines.append(f"  emit   notify {recipient} about {candidate}")
        return "\n".join(lines)
