"""The motif compiler: spec -> validated shape -> optimized operator plan.

The supported fragment ("threshold star motifs") is exactly what the
partitioned (S, D) infrastructure executes without new data structures:

* exactly **one dynamic edge** ``w -> t`` — the live trigger;
* a **count threshold** on the dynamic edge's *source* variable ``w``
  (the witnesses);
* one **static edge** ``r -> w`` from the emit recipient to the witness;
* emit ``(r, t)`` — notify the recipient about the dynamic target;
* optional forbid edges of the form ``r -> t``.

Everything else raises :class:`UnsupportedMotifError` with an explanation
of what would be needed (usually: an additional index).  This mirrors how
a real planner grows — each new shape earns its access path.
"""

from __future__ import annotations

from repro.motif.optimizer import IndexStatistics, choose_algorithm, estimate_cost
from repro.motif.plan import (
    CapWitnessesOp,
    EmitOp,
    ExcludeForbiddenEdgeOp,
    ExcludeIdentityOp,
    ExcludeWitnessesOp,
    FetchFollowerListsOp,
    FetchFreshWitnessesOp,
    KOverlapOp,
    MatchDynamicEdgeOp,
    Operator,
    Plan,
    RequireCountOp,
)
from repro.motif.spec import EdgeKind, MotifSpec, UnsupportedMotifError


def compile_motif(
    spec: MotifSpec,
    stats: IndexStatistics | None = None,
    max_witnesses: int | None = None,
) -> Plan:
    """Compile *spec* into an executable plan.

    Args:
        spec: the declarative motif.
        stats: index statistics for cost-based algorithm choice; without
            them the planner falls back to the adaptive default.
        max_witnesses: optional viral-target expansion cap.

    Raises:
        UnsupportedMotifError: if the spec is outside the star fragment.
    """
    witness, target, dynamic_edge = _validate_trigger(spec)
    recipient = _validate_recipient(spec, witness, target)
    k = spec.count_at_least[witness]

    notes: list[str] = []
    if stats is not None:
        cost = estimate_cost(k, stats)
        algorithm = cost.algorithm
        notes.append(f"cost: {cost.describe()}")
    else:
        # No statistics: pick by threshold shape only.
        algorithm = choose_algorithm(k, expected_lists=float(k), expected_list_length=0.0)
        notes.append("cost: no statistics; shape-based algorithm choice")

    operators: list[Operator] = [
        MatchDynamicEdgeOp(dynamic_edge.action),
        FetchFreshWitnessesOp(dynamic_edge.within, dynamic_edge.action),
        RequireCountOp(k),
    ]
    if max_witnesses is not None:
        if max_witnesses < k:
            raise UnsupportedMotifError(
                f"max_witnesses={max_witnesses} below threshold k={k}: "
                "the motif could never complete"
            )
        operators.append(CapWitnessesOp(max_witnesses))
    operators.append(FetchFollowerListsOp())
    operators.append(KOverlapOp(k, algorithm))
    if spec.distinct_emit:
        operators.append(ExcludeIdentityOp())
    if spec.exclude_witnesses:
        operators.append(ExcludeWitnessesOp())
    if _has_forbid_recipient_candidate(spec, recipient, target):
        operators.append(ExcludeForbiddenEdgeOp())
    operators.append(EmitOp(spec.name))
    return Plan(spec.name, operators, notes)


# ----------------------------------------------------------------------
# Shape validation
# ----------------------------------------------------------------------

def _validate_trigger(spec: MotifSpec):
    dynamic = spec.dynamic_edges()
    if len(dynamic) != 1:
        raise UnsupportedMotifError(
            f"motif {spec.name!r} has {len(dynamic)} dynamic edges; the "
            "infrastructure triggers on exactly one live edge (multi-trigger "
            "motifs would need a join buffer over D)"
        )
    edge = dynamic[0]
    witness, target = edge.src, edge.dst
    if witness not in spec.count_at_least:
        raise UnsupportedMotifError(
            f"motif {spec.name!r} lacks a count threshold on the dynamic "
            f"edge's source {witness!r}; unthresholded dynamic matches "
            "degenerate to firehose fan-out"
        )
    for var in spec.count_at_least:
        if var != witness:
            raise UnsupportedMotifError(
                f"count threshold on {var!r} unsupported: only the dynamic "
                f"source {witness!r} is counted (counting {var!r} would need "
                "an index keyed by that variable)"
            )
    return witness, target, edge


def _validate_recipient(spec: MotifSpec, witness: str, target: str) -> str:
    recipient, candidate = spec.emit
    if candidate != target:
        raise UnsupportedMotifError(
            f"motif {spec.name!r} emits candidate {candidate!r} but the "
            f"dynamic target is {target!r}; recommending anything except "
            "the live target needs a reverse lookup D lacks"
        )
    if recipient == witness:
        raise UnsupportedMotifError(
            f"motif {spec.name!r} notifies the witnesses themselves; that "
            "is a broadcast, not a motif"
        )
    static = spec.static_edges()
    expected = [e for e in static if e.src == recipient and e.dst == witness]
    if len(expected) != 1 or len(static) != 1:
        raise UnsupportedMotifError(
            f"motif {spec.name!r} must connect the recipient to the "
            f"witness via exactly one static edge {recipient}->{witness} "
            "(S answers exactly that lookup); longer static chains would "
            "need materialised multi-hop indexes"
        )
    return recipient


def _has_forbid_recipient_candidate(
    spec: MotifSpec, recipient: str, target: str
) -> bool:
    for edge in spec.forbid:
        if edge.kind is EdgeKind.STATIC and edge.src == recipient and edge.dst == target:
            continue
        raise UnsupportedMotifError(
            f"forbid constraint {edge.describe()} unsupported: only "
            f"NOT EXISTS {recipient}->{target} is checkable against S"
        )
    return bool(spec.forbid)
