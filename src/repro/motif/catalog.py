"""Named prebuilt motifs: the recommendation programs of the conclusion.

"beyond the 'diamond' motif there may exist others that are useful for
generating recommendations — these may be implemented as additional
programs that use the graph infrastructure."  Each factory below returns a
:class:`~repro.motif.spec.MotifSpec`; all compile to plans the existing
(S, D) infrastructure serves without modification.
"""

from __future__ import annotations

from typing import Callable

from repro.core.events import ActionType
from repro.core.params import PRODUCTION_K
from repro.graph.dynamic_index import DynamicEdgeIndex
from repro.graph.static_index import StaticFollowerIndex
from repro.motif.executor import DeclarativeDetector
from repro.motif.spec import EdgeKind, MotifSpec, PatternEdge


def diamond_spec(k: int = PRODUCTION_K, tau: float = 3600.0) -> MotifSpec:
    """The paper's diamond: >= k followings followed the same account."""
    return MotifSpec(
        name="diamond",
        vertices=("a", "b", "c"),
        edges=(
            PatternEdge("a", "b", EdgeKind.STATIC),
            PatternEdge("b", "c", EdgeKind.DYNAMIC, within=tau, action=ActionType.FOLLOW),
        ),
        count_at_least={"b": k},
        emit=("a", "c"),
        forbid=(PatternEdge("a", "c", EdgeKind.STATIC),),
    )


def wedge_spec(tau: float = 900.0) -> MotifSpec:
    """The k=1 degenerate diamond: *any* following followed someone new.

    Far noisier than the diamond (no corroboration), included as the
    natural baseline program and for parameter-sweep benchmarks.
    """
    return MotifSpec(
        name="wedge",
        vertices=("a", "b", "c"),
        edges=(
            PatternEdge("a", "b", EdgeKind.STATIC),
            PatternEdge("b", "c", EdgeKind.DYNAMIC, within=tau, action=ActionType.FOLLOW),
        ),
        count_at_least={"b": 1},
        emit=("a", "c"),
        forbid=(PatternEdge("a", "c", EdgeKind.STATIC),),
    )


def co_retweet_spec(k: int = PRODUCTION_K, tau: float = 1800.0) -> MotifSpec:
    """Content recommendation: >= k followings retweeted the same tweet."""
    return MotifSpec(
        name="co-retweet",
        vertices=("a", "b", "t"),
        edges=(
            PatternEdge("a", "b", EdgeKind.STATIC),
            PatternEdge("b", "t", EdgeKind.DYNAMIC, within=tau, action=ActionType.RETWEET),
        ),
        count_at_least={"b": k},
        emit=("a", "t"),
        # No forbid edge: "already follows the tweet" is meaningless; the
        # delivery funnel's dedup covers repeats.
        forbid=(),
        distinct_emit=True,
    )


def favorite_burst_spec(k: int = 2, tau: float = 600.0) -> MotifSpec:
    """Fast-twitch content signal: >= k followings favorited one tweet."""
    return MotifSpec(
        name="favorite-burst",
        vertices=("a", "b", "t"),
        edges=(
            PatternEdge("a", "b", EdgeKind.STATIC),
            PatternEdge("b", "t", EdgeKind.DYNAMIC, within=tau, action=ActionType.FAVORITE),
        ),
        count_at_least={"b": k},
        emit=("a", "t"),
    )


#: Registry of named motif factories.
MOTIF_CATALOG: dict[str, Callable[..., MotifSpec]] = {
    "diamond": diamond_spec,
    "wedge": wedge_spec,
    "co-retweet": co_retweet_spec,
    "favorite-burst": favorite_burst_spec,
}


def build_detector(
    name: str,
    static_index: StaticFollowerIndex,
    dynamic_index: DynamicEdgeIndex,
    inserts_edges: bool = True,
    **spec_kwargs: object,
) -> DeclarativeDetector:
    """Instantiate a catalog motif as a ready detector.

    Args:
        name: a key of :data:`MOTIF_CATALOG`.
        static_index, dynamic_index: the serving infrastructure.
        inserts_edges: see :class:`DeclarativeDetector`.
        **spec_kwargs: forwarded to the spec factory (``k``, ``tau``).
    """
    if name not in MOTIF_CATALOG:
        raise KeyError(
            f"unknown motif {name!r}; catalog has {sorted(MOTIF_CATALOG)}"
        )
    spec = MOTIF_CATALOG[name](**spec_kwargs)
    return DeclarativeDetector(
        spec, static_index, dynamic_index, inserts_edges=inserts_edges
    )
