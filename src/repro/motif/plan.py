"""Physical operators for compiled motif plans.

A plan is a linear pipeline of operators sharing a :class:`PlanContext`
(the graph infrastructure) and a per-event :class:`Bindings` scratchpad.
Operators return ``False`` to stop the pipeline for this event — the
moral equivalent of a row failing a predicate in a tuple-at-a-time
executor.  Keeping operators tiny and observable (each counts its
invocations and rejections) makes EXPLAIN output honest.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.events import ActionType, EdgeEvent
from repro.core.recommendation import Recommendation
from repro.graph.dynamic_index import DynamicEdgeIndex, FreshEdge
from repro.graph.intersect import (
    intersect_many,
    k_overlap_heap,
    k_overlap_numpy,
    k_overlap_scancount,
)
from repro.graph.static_index import StaticFollowerIndex


@dataclass
class PlanContext:
    """The infrastructure a plan executes against."""

    static_index: StaticFollowerIndex
    dynamic_index: DynamicEdgeIndex


@dataclass
class Bindings:
    """Per-event scratchpad threaded through the operator pipeline."""

    event: EdgeEvent
    now: float
    fresh: list[FreshEdge] = field(default_factory=list)
    follower_lists: list = field(default_factory=list)
    recipients: list[int] = field(default_factory=list)
    output: list[Recommendation] = field(default_factory=list)


class Operator:
    """Base operator: process bindings, count work, explain itself."""

    def __init__(self) -> None:
        self.invocations = 0
        self.rejections = 0

    def __call__(self, ctx: PlanContext, bindings: Bindings) -> bool:
        self.invocations += 1
        passed = self.process(ctx, bindings)
        if not passed:
            self.rejections += 1
        return passed

    def process(self, ctx: PlanContext, bindings: Bindings) -> bool:
        """Operator body; return False to stop the pipeline."""
        raise NotImplementedError

    def describe(self) -> str:
        """One EXPLAIN line."""
        return type(self).__name__


class MatchDynamicEdgeOp(Operator):
    """Accept only events whose action matches the dynamic pattern edge."""

    def __init__(self, action: ActionType | None) -> None:
        super().__init__()
        self.action = action

    def process(self, ctx: PlanContext, bindings: Bindings) -> bool:
        if self.action is not None and bindings.event.action is not self.action:
            return False
        return True

    def describe(self) -> str:
        action = self.action.value if self.action else "any"
        return f"MatchDynamicEdge(action={action})"


class FetchFreshWitnessesOp(Operator):
    """Top half of the motif: distinct fresh sources of the target from D.

    When the dynamic pattern edge carries an action type, only D entries
    tagged with that action count as witnesses.
    """

    def __init__(self, tau: float, action: ActionType | None = None) -> None:
        super().__init__()
        self.tau = tau
        self.action = action

    def process(self, ctx: PlanContext, bindings: Bindings) -> bool:
        bindings.fresh = ctx.dynamic_index.fresh_sources(
            bindings.event.target,
            now=max(bindings.now, bindings.event.created_at),
            tau=self.tau,
            action=self.action,
        )
        return True

    def describe(self) -> str:
        action = f", action={self.action.value}" if self.action else ""
        return f"FetchFreshWitnesses(D, tau={self.tau:g}s{action})"


class RequireCountOp(Operator):
    """Short-circuit unless at least k distinct witnesses are fresh."""

    def __init__(self, k: int) -> None:
        super().__init__()
        self.k = k

    def process(self, ctx: PlanContext, bindings: Bindings) -> bool:
        return len(bindings.fresh) >= self.k

    def describe(self) -> str:
        return f"RequireCount(witnesses >= {self.k})"


class CapWitnessesOp(Operator):
    """Expand only the most recent witnesses on ultra-viral targets."""

    def __init__(self, max_witnesses: int) -> None:
        super().__init__()
        self.max_witnesses = max_witnesses

    def process(self, ctx: PlanContext, bindings: Bindings) -> bool:
        if len(bindings.fresh) > self.max_witnesses:
            bindings.fresh = bindings.fresh[-self.max_witnesses :]
        return True

    def describe(self) -> str:
        return f"CapWitnesses(keep newest {self.max_witnesses})"


class FetchFollowerListsOp(Operator):
    """Fetch each witness's sorted follower list from S; drop empties."""

    def process(self, ctx: PlanContext, bindings: Bindings) -> bool:
        lists = []
        for edge in bindings.fresh:
            followers = ctx.static_index.followers_of(edge.source)
            if len(followers):
                lists.append(followers)
        bindings.follower_lists = lists
        return True

    def describe(self) -> str:
        return "FetchFollowerLists(S)"


class KOverlapOp(Operator):
    """Bottom half: recipients following at least k witnesses."""

    ALGORITHMS = ("intersect", "scancount", "heap", "numpy")

    def __init__(self, k: int, algorithm: str = "scancount") -> None:
        super().__init__()
        if algorithm not in self.ALGORITHMS:
            raise ValueError(
                f"unknown k-overlap algorithm {algorithm!r}; "
                f"expected one of {self.ALGORITHMS}"
            )
        self.k = k
        self.algorithm = algorithm

    def process(self, ctx: PlanContext, bindings: Bindings) -> bool:
        lists = bindings.follower_lists
        if len(lists) < self.k:
            return False
        if self.algorithm == "intersect" and self.k == len(lists):
            bindings.recipients = intersect_many(lists)
        elif self.algorithm == "heap":
            bindings.recipients = k_overlap_heap(lists, self.k)
        elif self.algorithm == "numpy":
            bindings.recipients = k_overlap_numpy(lists, self.k)
        else:
            bindings.recipients = k_overlap_scancount(lists, self.k)
        return bool(bindings.recipients)

    def describe(self) -> str:
        return f"KOverlap(k={self.k}, algorithm={self.algorithm})"


class ExcludeIdentityOp(Operator):
    """Drop the degenerate binding recipient == candidate."""

    def process(self, ctx: PlanContext, bindings: Bindings) -> bool:
        target = bindings.event.target
        bindings.recipients = [a for a in bindings.recipients if a != target]
        return bool(bindings.recipients)

    def describe(self) -> str:
        return "ExcludeIdentity(recipient != candidate)"


class ExcludeWitnessesOp(Operator):
    """Drop recipients who are themselves fresh witnesses.

    A witness just acted on the target (their edge sits in D even though S
    has not been reloaded yet), so notifying them is always pointless.
    """

    def process(self, ctx: PlanContext, bindings: Bindings) -> bool:
        witness_set = {edge.source for edge in bindings.fresh}
        bindings.recipients = [
            a for a in bindings.recipients if a not in witness_set
        ]
        return bool(bindings.recipients)

    def describe(self) -> str:
        return "ExcludeWitnesses(recipient not in fresh witnesses)"


class ExcludeForbiddenEdgeOp(Operator):
    """Enforce NOT EXISTS recipient -> candidate in the static snapshot."""

    def process(self, ctx: PlanContext, bindings: Bindings) -> bool:
        target = bindings.event.target
        bindings.recipients = [
            a
            for a in bindings.recipients
            if not ctx.static_index.has_edge(a, target)
        ]
        return bool(bindings.recipients)

    def describe(self) -> str:
        return "ExcludeForbiddenEdge(NOT recipient->candidate in S)"


class EmitOp(Operator):
    """Materialise recommendations for the surviving recipients."""

    def __init__(self, motif_name: str) -> None:
        super().__init__()
        self.motif_name = motif_name

    def process(self, ctx: PlanContext, bindings: Bindings) -> bool:
        via = tuple(edge.source for edge in bindings.fresh)
        bindings.output = [
            Recommendation(
                recipient=int(a),
                candidate=bindings.event.target,
                created_at=bindings.event.created_at,
                motif=self.motif_name,
                action=bindings.event.action,
                via=via,
            )
            for a in bindings.recipients
        ]
        return True

    def describe(self) -> str:
        return f"Emit(motif={self.motif_name})"


class Plan:
    """A compiled, executable motif plan."""

    def __init__(self, motif_name: str, operators: list[Operator], notes: list[str]) -> None:
        """Wrap an operator pipeline; produced by the planner."""
        self.motif_name = motif_name
        self.operators = operators
        self.notes = notes

    def execute(self, ctx: PlanContext, event: EdgeEvent, now: float) -> list[Recommendation]:
        """Run the pipeline for one live edge."""
        bindings = Bindings(event=event, now=now)
        for operator in self.operators:
            if not operator(ctx, bindings):
                return []
        return bindings.output

    def explain(self) -> str:
        """Textual plan: one line per operator plus optimizer notes."""
        lines = [f"plan for motif {self.motif_name!r}:"]
        lines += [f"  {i}. {op.describe()}" for i, op in enumerate(self.operators, 1)]
        lines += [f"  -- {note}" for note in self.notes]
        return "\n".join(lines)

    def operator_stats(self) -> list[tuple[str, int, int]]:
        """(describe, invocations, rejections) per operator."""
        return [
            (op.describe(), op.invocations, op.rejections)
            for op in self.operators
        ]
