"""The declarative detector: a compiled plan behind the detector protocol.

Drop-in compatible with the hand-coded :class:`~repro.core.diamond.DiamondDetector`
— it can be registered on the same engine, partition servers, and clusters.
Equivalence to the hand-coded path is asserted by tests; the residual
overhead of the operator pipeline is measured by benchmark E13.
"""

from __future__ import annotations

from repro.core.events import EdgeEvent
from repro.core.recommendation import Recommendation
from repro.graph.dynamic_index import DynamicEdgeIndex
from repro.graph.static_index import StaticFollowerIndex
from repro.motif.optimizer import IndexStatistics
from repro.motif.plan import Plan, PlanContext
from repro.motif.planner import compile_motif
from repro.motif.spec import MotifSpec


class DeclarativeDetector:
    """Executes a compiled motif plan per live edge."""

    def __init__(
        self,
        spec: MotifSpec,
        static_index: StaticFollowerIndex,
        dynamic_index: DynamicEdgeIndex,
        inserts_edges: bool = True,
        collect_statistics: bool = True,
        max_witnesses: int | None = None,
        plan: Plan | None = None,
    ) -> None:
        """Compile *spec* against the given indexes.

        Args:
            spec: the declarative motif.
            static_index: the partition's S shard.
            dynamic_index: the partition's D copy.
            inserts_edges: insert events into D (False when an engine owns
                the single insert).
            collect_statistics: scan the indexes for the cost-based
                algorithm choice (skip for empty/boot-time indexes).
            max_witnesses: viral-target expansion cap.
            plan: inject a prebuilt plan (ablations force algorithms this
                way); compiled from the spec when omitted.
        """
        self.spec = spec
        self._ctx = PlanContext(static_index, dynamic_index)
        self._inserts_edges = inserts_edges
        if plan is None:
            stats = (
                IndexStatistics.collect(static_index, dynamic_index)
                if collect_statistics
                else None
            )
            plan = compile_motif(spec, stats=stats, max_witnesses=max_witnesses)
        self.plan = plan

    @property
    def name(self) -> str:
        """Motif name (carried into recommendation provenance)."""
        return self.spec.name

    def on_edge(
        self, event: EdgeEvent, now: float | None = None
    ) -> list[Recommendation]:
        """Run the compiled plan for one live edge."""
        if now is None:
            now = event.created_at
        if self._inserts_edges:
            self._ctx.dynamic_index.insert(
                event.actor, event.target, event.created_at, action=event.action
            )
        return self.plan.execute(self._ctx, event, now)

    def rebind_static(self, static_index: StaticFollowerIndex) -> None:
        """Swap in a freshly-loaded S snapshot (periodic offline reload)."""
        self._ctx.static_index = static_index

    def explain(self) -> str:
        """The plan's EXPLAIN text."""
        return self.plan.explain()
