"""A text syntax for motif specifications.

"one can declaratively specify a motif" — the most declarative interface
is text.  The grammar is exactly what :meth:`MotifSpec.describe` prints,
so specs round-trip::

    motif diamond:
      match  a -[static]-> b
      match  b -[dynamic, within 3600s, action=follow]-> c
      count  distinct b >= 3
      forbid a -[static]-> c
      emit   notify a about c

Vertices are implicit: every name mentioned in an edge or the emit clause
is declared.  Parse errors carry the line number and the offending text.
"""

from __future__ import annotations

import re

from repro.core.events import ActionType
from repro.motif.spec import EdgeKind, MotifSpec, PatternEdge


class MotifParseError(ValueError):
    """Input text is not a valid motif description."""

    def __init__(self, line_number: int, line: str, reason: str) -> None:
        super().__init__(f"line {line_number}: {reason}: {line.strip()!r}")
        self.line_number = line_number
        self.line = line
        self.reason = reason


_HEADER = re.compile(r"^motif\s+([A-Za-z_][\w.-]*)\s*:$")
_STATIC_EDGE = re.compile(r"^(\w+)\s*-\[\s*static\s*\]->\s*(\w+)$")
_DYNAMIC_EDGE = re.compile(
    r"^(\w+)\s*-\[\s*dynamic\s*,\s*within\s+([0-9.]+)s?"
    r"(?:\s*,\s*action\s*=\s*(\w+))?\s*\]->\s*(\w+)$"
)
_COUNT = re.compile(r"^distinct\s+(\w+)\s*>=\s*(\d+)$")
_EMIT = re.compile(r"^notify\s+(\w+)\s+about\s+(\w+)$")


def parse_motif(text: str) -> MotifSpec:
    """Parse the text syntax into a validated :class:`MotifSpec`.

    Raises:
        MotifParseError: on syntax errors (with line number);
        ValueError: when the parsed spec fails semantic validation.
    """
    name: str | None = None
    edges: list[PatternEdge] = []
    forbid: list[PatternEdge] = []
    counts: dict[str, int] = {}
    emit: tuple[str, str] | None = None
    vertices: list[str] = []

    def declare(*names: str) -> None:
        for vertex in names:
            if vertex not in vertices:
                vertices.append(vertex)

    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if name is None:
            match = _HEADER.match(line)
            if not match:
                raise MotifParseError(
                    line_number, raw, "expected 'motif <name>:' header"
                )
            name = match.group(1)
            continue

        keyword, _, rest = line.partition(" ")
        rest = rest.strip()
        if keyword == "match":
            edge = _parse_edge(line_number, raw, rest)
            edges.append(edge)
            declare(edge.src, edge.dst)
        elif keyword == "forbid":
            edge = _parse_edge(line_number, raw, rest)
            forbid.append(edge)
            declare(edge.src, edge.dst)
        elif keyword == "count":
            match = _COUNT.match(rest)
            if not match:
                raise MotifParseError(
                    line_number, raw, "expected 'count distinct <v> >= <k>'"
                )
            counts[match.group(1)] = int(match.group(2))
        elif keyword == "emit":
            match = _EMIT.match(rest)
            if not match:
                raise MotifParseError(
                    line_number, raw, "expected 'emit notify <a> about <c>'"
                )
            emit = (match.group(1), match.group(2))
        else:
            raise MotifParseError(
                line_number, raw, f"unknown clause {keyword!r}"
            )

    if name is None:
        raise MotifParseError(0, text[:40], "missing 'motif <name>:' header")
    if emit is None:
        raise MotifParseError(0, text[:40], "missing emit clause")
    return MotifSpec(
        name=name,
        vertices=tuple(vertices),
        edges=tuple(edges),
        count_at_least=counts,
        emit=emit,
        forbid=tuple(forbid),
    )


def _parse_edge(line_number: int, raw: str, rest: str) -> PatternEdge:
    static = _STATIC_EDGE.match(rest)
    if static:
        return PatternEdge(static.group(1), static.group(2), EdgeKind.STATIC)
    dynamic = _DYNAMIC_EDGE.match(rest)
    if dynamic:
        src, within, action_name, dst = dynamic.groups()
        action = None
        if action_name is not None:
            try:
                action = ActionType(action_name)
            except ValueError:
                raise MotifParseError(
                    line_number,
                    raw,
                    f"unknown action {action_name!r} "
                    f"(expected one of {[a.value for a in ActionType]})",
                ) from None
        return PatternEdge(
            src, dst, EdgeKind.DYNAMIC, within=float(within), action=action
        )
    raise MotifParseError(
        line_number,
        raw,
        "expected '<v> -[static]-> <w>' or "
        "'<v> -[dynamic, within <s>s(, action=<a>)]-> <w>'",
    )
