"""The declarative motif engine the paper's conclusion envisions.

"we envision the development of a generalized framework where one can
declaratively specify a motif, which would yield an optimized query plan
against an online graph database.  This would seem to represent an entirely
new class of data management systems."

This package is that framework, scoped to the pattern fragment the
partitioned (S, D) infrastructure can serve:

* :mod:`~repro.motif.spec` — motifs as pattern graphs: vertex variables,
  static/dynamic pattern edges, count thresholds, NOT-EXISTS constraints,
  and an emit clause;
* :mod:`~repro.motif.planner` — compiles a spec into an operator pipeline,
  rejecting patterns outside the supported fragment with a precise error;
* :mod:`~repro.motif.plan` — the physical operators (fetch fresh
  witnesses, threshold, fetch follower lists, k-overlap, filters, emit);
* :mod:`~repro.motif.optimizer` — index statistics and the cost-based
  choice of k-overlap algorithm;
* :mod:`~repro.motif.executor` — an :class:`~repro.core.detector.OnlineDetector`
  that runs the compiled plan per live edge (drop-in compatible with the
  hand-coded diamond detector, and tested equivalent to it);
* :mod:`~repro.motif.catalog` — named prebuilt motifs (diamond, wedge,
  co-retweet, favorite-burst).
"""

from repro.motif.spec import (
    EdgeKind,
    MotifSpec,
    PatternEdge,
    UnsupportedMotifError,
)
from repro.motif.plan import Plan, PlanContext
from repro.motif.planner import compile_motif
from repro.motif.optimizer import IndexStatistics, choose_algorithm
from repro.motif.executor import DeclarativeDetector
from repro.motif.parser import MotifParseError, parse_motif
from repro.motif.catalog import (
    MOTIF_CATALOG,
    build_detector,
    co_retweet_spec,
    diamond_spec,
    favorite_burst_spec,
    wedge_spec,
)

__all__ = [
    "EdgeKind",
    "MotifSpec",
    "PatternEdge",
    "UnsupportedMotifError",
    "Plan",
    "PlanContext",
    "compile_motif",
    "IndexStatistics",
    "choose_algorithm",
    "DeclarativeDetector",
    "MotifParseError",
    "parse_motif",
    "MOTIF_CATALOG",
    "build_detector",
    "diamond_spec",
    "wedge_spec",
    "co_retweet_spec",
    "favorite_burst_spec",
]
