"""Index statistics and cost-based physical choices for motif plans.

The optimizer makes the decisions that matter at this system's scale:

* which k-overlap algorithm to run (plain intersection when the threshold
  equals the expected witness count; ScanCount for small inputs; sorted
  heap merge for large ones) — the E11/E13 ablations measure the gap;
* whether the threshold check can short-circuit before any S lookups.

Statistics are collected once from the live indexes (cheap scans) and can
be refreshed whenever the offline snapshot is reloaded.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.dynamic_index import DynamicEdgeIndex
from repro.graph.static_index import StaticFollowerIndex

#: Total-input-size crossover between ScanCount and the heap merge,
#: determined by the E11 ablation.
SCANCOUNT_CUTOFF = 4096


@dataclass(frozen=True)
class IndexStatistics:
    """Summary statistics of one partition's S and D."""

    #: Mean follower-list length in S.
    mean_followers: float
    #: 99th-percentile follower-list length (hub detection).
    p99_followers: float
    #: Mean currently-stored fresh edges per D target.
    mean_fresh_sources: float

    @classmethod
    def collect(
        cls,
        static_index: StaticFollowerIndex,
        dynamic_index: DynamicEdgeIndex | None = None,
    ) -> "IndexStatistics":
        """Scan the indexes and summarise them."""
        lengths = sorted(
            len(static_index.followers_of(b)) for b in static_index.sources()
        )
        if lengths:
            mean = sum(lengths) / len(lengths)
            p99 = lengths[min(len(lengths) - 1, int(0.99 * len(lengths)))]
        else:
            mean, p99 = 0.0, 0.0
        if dynamic_index is not None and dynamic_index.num_targets > 0:
            fresh = dynamic_index.num_edges / dynamic_index.num_targets
        else:
            fresh = 0.0
        return cls(
            mean_followers=mean,
            p99_followers=float(p99),
            mean_fresh_sources=fresh,
        )


def choose_algorithm(
    k: int,
    expected_lists: float,
    expected_list_length: float,
) -> str:
    """Pick the k-overlap algorithm for the estimated input shape.

    Args:
        k: the count threshold.
        expected_lists: expected number of witness follower lists.
        expected_list_length: expected length of each list.

    Returns:
        One of ``"intersect"``, ``"scancount"``, ``"numpy"`` (the names the
        :class:`~repro.motif.plan.KOverlapOp` accepts; ``"heap"`` exists
        for the ablation but never wins on this interpreter).
    """
    if expected_lists and k >= expected_lists:
        # Threshold == every expected witness: plain multiway intersection
        # with smallest-first ordering and early exit.
        return "intersect"
    total = expected_lists * expected_list_length
    if total <= SCANCOUNT_CUTOFF:
        return "scancount"
    return "numpy"


@dataclass(frozen=True)
class CostEstimate:
    """Back-of-envelope per-trigger cost for plan explanations."""

    expected_lists: float
    expected_list_length: float
    algorithm: str

    @property
    def expected_work(self) -> float:
        """Roughly, elements touched per completed trigger."""
        return self.expected_lists * self.expected_list_length

    def describe(self) -> str:
        """One-line rendering for EXPLAIN output."""
        return (
            f"~{self.expected_lists:.1f} lists x "
            f"~{self.expected_list_length:.0f} followers "
            f"=> {self.algorithm} (~{self.expected_work:.0f} element reads)"
        )


def estimate_cost(k: int, stats: IndexStatistics) -> CostEstimate:
    """Estimate per-trigger cost of a threshold-k star motif."""
    expected_lists = max(stats.mean_fresh_sources, float(k))
    algorithm = choose_algorithm(k, expected_lists, stats.mean_followers)
    return CostEstimate(
        expected_lists=expected_lists,
        expected_list_length=stats.mean_followers,
        algorithm=algorithm,
    )
