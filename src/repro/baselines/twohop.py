"""The two-hop-neighborhood baseline the paper rules out second.

"Another approach would be to keep track of each A's two-hop neighborhood; a
rough calculation shows that this is impractical, even using approximate
data structures such as Bloom filters."

The design: every user A owns a counting Bloom filter over the C's reachable
via its followings.  When a live edge ``B -> C`` arrives, the system fans
out to *every follower of B* and increments C in each of their filters; a
counter crossing ``k`` fires a recommendation.  Two costs sink it at scale:

* **memory** — one filter per user, sized for the user's two-hop
  neighborhood, which for Twitter-scale graphs extrapolates to hundreds of
  terabytes (benchmark E10 performs the paper's "rough calculation" with
  measured constants);
* **write amplification** — an edge from a B with a million followers costs
  a million filter updates, versus one D insert in the paper's design.

The implementation is fully functional at laptop scale so the benchmarks
measure real constants rather than guesses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.bloom import CountingBloomFilter
from repro.core.events import EdgeEvent
from repro.core.params import DetectionParams
from repro.core.recommendation import Recommendation
from repro.graph.ids import UserId
from repro.graph.static_index import StaticFollowerIndex
from repro.util.memory import MemoryEstimate, format_bytes
from repro.util.validation import require_positive


class TwoHopBloomDetector:
    """Per-user counting Bloom filters over two-hop reachable targets."""

    def __init__(
        self,
        static_index: StaticFollowerIndex,
        num_users: int,
        params: DetectionParams | None = None,
        filter_capacity: int = 1024,
        fp_rate: float = 0.01,
    ) -> None:
        """Create the per-user filter bank.

        Args:
            static_index: the follower index (B -> A's), used for fan-out.
            num_users: total user count; one filter is allocated lazily per
                user that receives any update.
            params: k threshold (tau is ignored — time-decaying a Bloom
                filter needs generation rotation, one of several reasons the
                paper discards the design; we grant it an infinite window,
                which only *helps* its recall).
            filter_capacity: expected two-hop neighborhood size per user.
            fp_rate: per-filter false-positive target.
        """
        require_positive(num_users, "num_users")
        self.params = params or DetectionParams()
        self.num_users = num_users
        self.filter_capacity = filter_capacity
        self.fp_rate = fp_rate
        self._static = static_index
        self._filters: dict[UserId, CountingBloomFilter] = {}
        self.updates_performed = 0

    def _filter_for(self, a: UserId) -> CountingBloomFilter:
        existing = self._filters.get(a)
        if existing is None:
            existing = CountingBloomFilter(self.filter_capacity, self.fp_rate)
            self._filters[a] = existing
        return existing

    def on_edge(self, event: EdgeEvent) -> list[Recommendation]:
        """Fan the edge out to every follower of the actor."""
        recommendations: list[Recommendation] = []
        for a in self._static.followers_of(event.actor):
            counter = self._filter_for(a)
            count = counter.increment(event.target)
            self.updates_performed += 1
            if count == self.params.k:  # fires exactly once per crossing
                if self.params.exclude_candidate_recipient and a == event.target:
                    continue
                if self.params.exclude_existing_followers and self._static.has_edge(
                    a, event.target
                ):
                    continue
                recommendations.append(
                    Recommendation(
                        recipient=int(a),
                        candidate=event.target,
                        created_at=event.created_at,
                        motif="twohop-bloom",
                        action=event.action,
                    )
                )
        return recommendations

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def memory_bytes(self) -> int:
        """Total bytes across all allocated filters."""
        return sum(f.memory_bytes() for f in self._filters.values())

    def allocated_filters(self) -> int:
        """Number of users that have at least one update."""
        return len(self._filters)


@dataclass(frozen=True)
class TwoHopMemoryModel:
    """The paper's "rough calculation", parameterised by measured constants.

    Attributes:
        mean_two_hop_size: average distinct two-hop neighborhood size per
            user (measured on the evaluation graph).
        bytes_per_element: filter bytes per stored element (measured from
            the actual :class:`CountingBloomFilter` geometry).
    """

    mean_two_hop_size: float
    bytes_per_element: float

    def bytes_per_user(self) -> float:
        """Filter bytes one user's two-hop neighborhood needs."""
        return self.mean_two_hop_size * self.bytes_per_element

    def total_bytes(self, num_users: float) -> float:
        """Fleet-wide bytes for *num_users* users."""
        return self.bytes_per_user() * num_users

    def report(self, num_users: float = 1e8) -> str:
        """One-line verdict at Twitter scale (default 10^8 users)."""
        total = self.total_bytes(num_users)
        return (
            f"~{self.mean_two_hop_size:.0f} two-hop targets/user x "
            f"{self.bytes_per_element:.1f} B/element x {num_users:.0e} users "
            f"= {format_bytes(total)}"
        )

    def as_estimate(self, measured_users: int) -> MemoryEstimate:
        """Adapter to the generic extrapolation helper."""
        return MemoryEstimate(
            measured_bytes=self.bytes_per_user() * measured_users,
            measured_scale=measured_users,
            notes=[
                f"mean two-hop size {self.mean_two_hop_size:.1f}",
                f"{self.bytes_per_element:.2f} bytes/element (counting Bloom)",
            ],
        )


def measure_two_hop_sizes(
    followings: dict[UserId, list[UserId]],
    sample_users: list[UserId],
) -> list[int]:
    """Exact distinct two-hop neighborhood sizes for *sample_users*.

    ``followings`` maps each user to the accounts it follows (forward
    adjacency).  The two-hop set of A is ``{C : A -> B -> C}``.
    """
    sizes: list[int] = []
    for a in sample_users:
        reachable: set[UserId] = set()
        for b in followings.get(a, ()):
            reachable.update(followings.get(b, ()))
        sizes.append(len(reachable))
    return sizes
