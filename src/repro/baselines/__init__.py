"""Baselines: the reference implementation and the ruled-out designs.

The paper says: "At the outset, we ruled out two obvious but naive
solutions.  One could poll each user's network periodically ... however, the
latency would be unacceptably large.  Another approach would be to keep
track of each A's two-hop neighborhood; a rough calculation shows that this
is impractical, even using approximate data structures such as Bloom
filters."

We implement both rejected designs faithfully enough to measure *why* they
lose (benchmarks E9 and E10), plus an offline batch detector that serves as
ground truth for recall experiments (E7).
"""

from repro.baselines.bloom import BloomFilter, CountingBloomFilter
from repro.baselines.batch import BatchDiamondDetector, batch_candidates
from repro.baselines.polling import PollingDetector, PollingReport
from repro.baselines.twohop import TwoHopBloomDetector, TwoHopMemoryModel

__all__ = [
    "BloomFilter",
    "CountingBloomFilter",
    "BatchDiamondDetector",
    "batch_candidates",
    "PollingDetector",
    "PollingReport",
    "TwoHopBloomDetector",
    "TwoHopMemoryModel",
]
