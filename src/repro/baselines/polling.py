"""The polling baseline the paper rules out first.

"One could poll each user's network periodically to see if the motif has
been formed since the last query; however, the latency would be unacceptably
large."

This module implements that design faithfully: edge events are merely
*recorded* as they arrive; motifs are only discovered when a periodic sweep
re-examines each user's two-hop activity.  Benchmark E9 measures the two
costs the paper alludes to:

* **detection delay** — a motif completing just after a sweep waits almost a
  full interval (mean ~ interval / 2, worst ~ interval), versus milliseconds
  for the event-driven detector;
* **query load** — every sweep reads every user's followings' recent edges,
  so the read volume scales with users / interval instead of with the event
  rate.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field

from repro.core.events import EdgeEvent
from repro.core.params import DetectionParams
from repro.graph.ids import UserId
from repro.util.stats import PercentileTracker
from repro.util.validation import require_positive


@dataclass(frozen=True)
class PolledRecommendation:
    """A motif found by a sweep, with both completion and detection times."""

    recipient: UserId
    candidate: UserId
    completed_at: float
    detected_at: float

    @property
    def delay(self) -> float:
        """Seconds the recommendation sat undetected."""
        return self.detected_at - self.completed_at


@dataclass
class PollingReport:
    """Aggregate cost/latency accounting for one polling run."""

    poll_interval: float
    polls: int = 0
    events_observed: int = 0
    recommendations: list[PolledRecommendation] = field(default_factory=list)
    #: Adjacency-list reads performed by sweeps (the query-load metric).
    adjacency_reads: int = 0
    delay: PercentileTracker = field(default_factory=PercentileTracker)

    def reads_per_second(self, duration: float) -> float:
        """Sweep-driven read volume normalised by stream duration."""
        return self.adjacency_reads / duration if duration > 0 else 0.0


class PollingDetector:
    """Periodic two-hop polling over recorded recent edges."""

    def __init__(
        self,
        follows: list[tuple[UserId, UserId]],
        params: DetectionParams | None = None,
    ) -> None:
        """Create a polling detector.

        Args:
            follows: static ``(A, B)`` follow edges.
            params: same k / tau semantics as the online detector.
        """
        self.params = params or DetectionParams()
        self._followings: dict[UserId, list[UserId]] = defaultdict(list)
        self._follows_set: set[tuple[UserId, UserId]] = set()
        for a, b in follows:
            if (a, b) not in self._follows_set:
                self._follows_set.add((a, b))
                self._followings[a].append(b)
        #: Recent out-edges per source B, pruned to the freshness window.
        self._recent: dict[UserId, deque[tuple[float, UserId]]] = defaultdict(deque)
        #: Pairs already surfaced.  Each (recipient, candidate) pair is
        #: emitted once — at first detection — so the reported delay is the
        #: first-detection latency the paper's complaint is about (without
        #: this, a long-lived motif re-surfaces every window with a stale
        #: completion time and pollutes the delay distribution).
        self._emitted: set[tuple[UserId, UserId]] = set()

    # ------------------------------------------------------------------
    # Stream side: record only, never detect.
    # ------------------------------------------------------------------

    def observe(self, event: EdgeEvent) -> None:
        """Record one live edge (no detection happens here)."""
        entry = self._recent[event.actor]
        entry.append((event.created_at, event.target))
        cutoff = event.created_at - self.params.tau
        while entry and entry[0][0] < cutoff:
            entry.popleft()

    # ------------------------------------------------------------------
    # Poll side: the periodic sweep.
    # ------------------------------------------------------------------

    def poll(
        self,
        now: float,
        user_ids: list[UserId] | None = None,
    ) -> tuple[list[PolledRecommendation], int]:
        """Sweep each user's network; returns (new recommendations, reads).

        Args:
            now: sweep time; only edges within ``[now - tau, now]`` count.
            user_ids: users to sweep (defaults to every known A).
        """
        params = self.params
        cutoff = now - params.tau
        users = user_ids if user_ids is not None else list(self._followings)
        found: list[PolledRecommendation] = []
        reads = 0

        for a in users:
            reads += 1  # reading A's followings list
            # target -> {B: latest fresh timestamp}
            per_target: dict[UserId, dict[UserId, float]] = defaultdict(dict)
            for b in self._followings.get(a, ()):
                reads += 1  # reading B's recent out-edges
                for t, c in self._recent.get(b, ()):
                    if cutoff <= t <= now:
                        previous = per_target[c].get(b)
                        if previous is None or t > previous:
                            per_target[c][b] = t
            for c, sources in per_target.items():
                if len(sources) < params.k:
                    continue
                if params.exclude_candidate_recipient and a == c:
                    continue
                if params.exclude_existing_followers:
                    if a in sources or (a, c) in self._follows_set:
                        continue
                if (a, c) in self._emitted:
                    continue  # already surfaced; measure first detection only
                # The motif completed when the k-th distinct B turned fresh.
                completion = sorted(sources.values())[params.k - 1]
                self._emitted.add((a, c))
                found.append(
                    PolledRecommendation(
                        recipient=a,
                        candidate=c,
                        completed_at=completion,
                        detected_at=now,
                    )
                )
        return found, reads


def run_polling_simulation(
    follows: list[tuple[UserId, UserId]],
    events: list[EdgeEvent],
    poll_interval: float,
    params: DetectionParams | None = None,
    user_ids: list[UserId] | None = None,
    duration: float | None = None,
) -> PollingReport:
    """Replay *events* with sweeps every *poll_interval* seconds.

    Sweeps run at ``interval, 2*interval, ...`` up to *duration* (default:
    the last event time, plus one final sweep so trailing motifs are found).
    Pass an explicit *duration* when comparing intervals, so every run is
    charged for the same wall-clock horizon.
    """
    require_positive(poll_interval, "poll_interval")
    detector = PollingDetector(follows, params)
    report = PollingReport(poll_interval=poll_interval)
    ordered = sorted(events, key=lambda event: event.created_at)
    if not ordered:
        return report

    end = duration if duration is not None else ordered[-1].created_at
    next_poll = poll_interval
    index = 0
    while next_poll <= end + poll_interval:
        while index < len(ordered) and ordered[index].created_at <= next_poll:
            detector.observe(ordered[index])
            report.events_observed += 1
            index += 1
        found, reads = detector.poll(next_poll, user_ids)
        report.polls += 1
        report.adjacency_reads += reads
        for rec in found:
            report.recommendations.append(rec)
            report.delay.add(rec.delay)
        next_poll += poll_interval
    return report
