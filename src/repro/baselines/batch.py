"""Offline batch diamond detection: the ground-truth reference.

"Nearly all approaches to motif detection are based on a static graph
snapshot and viewed as batch computations" — this module is that classical
approach, deliberately implemented with naive data structures (dicts and
sets, per-target sliding windows, no pruning, no sorted packing) so it
shares no code with the online path.  Tests assert the online detector
matches it event-for-event; the pruning benchmarks use it to measure recall.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.core.events import EdgeEvent
from repro.core.params import DetectionParams
from repro.graph.ids import UserId


@dataclass(frozen=True)
class BatchCandidate:
    """One ground-truth candidate: at *time*, *recipient* qualified for *candidate*."""

    time: float
    recipient: UserId
    candidate: UserId


class BatchDiamondDetector:
    """Replay a finished stream and enumerate every diamond completion."""

    def __init__(
        self,
        follows: list[tuple[UserId, UserId]],
        params: DetectionParams | None = None,
    ) -> None:
        """Create a batch detector.

        Args:
            follows: static ``(A, B)`` follow edges.
            params: same semantics as the online detector's parameters.
        """
        self.params = params or DetectionParams()
        self._followings: dict[UserId, set[UserId]] = defaultdict(set)
        self._followers: dict[UserId, set[UserId]] = defaultdict(set)
        for a, b in follows:
            self._followings[a].add(b)
            self._followers[b].add(a)

    def run(self, events: list[EdgeEvent]) -> list[BatchCandidate]:
        """Replay *events* (any order) and return per-event candidates.

        Semantics mirror the online path: at each event, the fresh distinct
        sources of its target are computed over the trailing ``tau`` window,
        and every A following at least ``k`` of them is emitted.  Re-firing
        on later events produces duplicates, exactly like the raw online
        candidate stream.
        """
        params = self.params
        ordered = sorted(events, key=lambda event: event.created_at)
        history: dict[UserId, list[tuple[float, UserId]]] = defaultdict(list)
        output: list[BatchCandidate] = []

        for event in ordered:
            history[event.target].append((event.created_at, event.actor))
            fresh: dict[UserId, float] = {}
            for t, b in history[event.target]:
                if event.created_at - params.tau <= t <= event.created_at:
                    fresh[b] = max(fresh.get(b, t), t)
            if len(fresh) < params.k:
                continue
            counts: dict[UserId, int] = defaultdict(int)
            for b in fresh:
                for a in self._followers.get(b, ()):
                    counts[a] += 1
            for a in sorted(counts):
                if counts[a] < params.k:
                    continue
                if params.exclude_candidate_recipient and a == event.target:
                    continue
                if params.exclude_existing_followers:
                    if a in fresh or event.target in self._followings.get(a, ()):
                        continue
                output.append(BatchCandidate(event.created_at, a, event.target))
        return output

    def distinct_pairs(self, events: list[EdgeEvent]) -> set[tuple[UserId, UserId]]:
        """The deduplicated ``(recipient, candidate)`` ground truth set."""
        return {(c.recipient, c.candidate) for c in self.run(events)}


def batch_candidates(
    follows: list[tuple[UserId, UserId]],
    events: list[EdgeEvent],
    params: DetectionParams | None = None,
) -> list[BatchCandidate]:
    """Convenience wrapper: build a batch detector and run it."""
    return BatchDiamondDetector(follows, params).run(events)
