"""Bloom filters, plain and counting.

Built from scratch (no external dependency) for the two-hop-neighborhood
baseline the paper rules out.  Double hashing (Kirsch-Mitzenmacher) derives
the k probe positions from two 64-bit mixes of the key, which keeps
membership checks cheap and the layout easy to size analytically.
"""

from __future__ import annotations

import math

from repro.util.validation import require, require_positive, require_probability

_MASK64 = (1 << 64) - 1


def _splitmix64(value: int) -> int:
    """SplitMix64 finalizer: a fast, well-mixed 64-bit hash of an int."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def optimal_num_bits(capacity: int, fp_rate: float) -> int:
    """Bits needed for *capacity* keys at the target false-positive rate."""
    require_positive(capacity, "capacity")
    require_probability(fp_rate, "fp_rate")
    require(0.0 < fp_rate < 1.0, "fp_rate must be strictly inside (0, 1)")
    bits = -capacity * math.log(fp_rate) / (math.log(2.0) ** 2)
    return max(8, int(math.ceil(bits)))


def optimal_num_hashes(num_bits: int, capacity: int) -> int:
    """Probe count minimising the false-positive rate for the geometry."""
    return max(1, int(round(num_bits / capacity * math.log(2.0))))


class BloomFilter:
    """A standard Bloom filter over non-negative integer keys."""

    def __init__(self, capacity: int, fp_rate: float = 0.01) -> None:
        """Size the filter for *capacity* keys at *fp_rate* false positives."""
        self.capacity = capacity
        self.fp_rate = fp_rate
        self.num_bits = optimal_num_bits(capacity, fp_rate)
        self.num_hashes = optimal_num_hashes(self.num_bits, capacity)
        self._bits = bytearray((self.num_bits + 7) // 8)
        self._count = 0

    def _positions(self, key: int):
        h1 = _splitmix64(key)
        h2 = _splitmix64(h1) | 1  # odd stride: full period over the table
        for i in range(self.num_hashes):
            yield (h1 + i * h2) % self.num_bits

    def add(self, key: int) -> None:
        """Insert *key* (idempotent for membership purposes)."""
        for position in self._positions(key):
            self._bits[position >> 3] |= 1 << (position & 7)
        self._count += 1

    def __contains__(self, key: int) -> bool:
        for position in self._positions(key):
            if not self._bits[position >> 3] & (1 << (position & 7)):
                return False
        return True

    def __len__(self) -> int:
        """Number of add() calls (an upper bound on distinct keys)."""
        return self._count

    def memory_bytes(self) -> int:
        """Size of the bit array (the dominating cost at scale)."""
        return len(self._bits)

    def expected_fp_rate(self) -> float:
        """Theoretical false-positive rate at the current fill level."""
        if self._count == 0:
            return 0.0
        exponent = -self.num_hashes * self._count / self.num_bits
        return (1.0 - math.exp(exponent)) ** self.num_hashes


class CountingBloomFilter:
    """A counting Bloom filter: supports threshold queries, not just membership.

    The two-hop baseline needs "has this C been reached via at least k
    distinct B's?"  A plain Bloom cannot count, so each slot holds a small
    saturating counter (one byte).  That multiplies the memory by 8x over a
    plain Bloom — which is precisely the arithmetic that makes the paper's
    "rough calculation" come out impractical.
    """

    #: Saturation limit of the one-byte slots.
    MAX_COUNT = 255

    def __init__(self, capacity: int, fp_rate: float = 0.01) -> None:
        """Size the counter array as a Bloom of the same geometry."""
        self.capacity = capacity
        self.fp_rate = fp_rate
        self.num_slots = optimal_num_bits(capacity, fp_rate)
        self.num_hashes = optimal_num_hashes(self.num_slots, capacity)
        self._slots = bytearray(self.num_slots)
        self._count = 0

    def _positions(self, key: int):
        h1 = _splitmix64(key)
        h2 = _splitmix64(h1) | 1
        for i in range(self.num_hashes):
            yield (h1 + i * h2) % self.num_slots

    def increment(self, key: int) -> int:
        """Add one occurrence of *key*; returns the new estimated count."""
        estimate = self.MAX_COUNT
        for position in self._positions(key):
            if self._slots[position] < self.MAX_COUNT:
                self._slots[position] += 1
            estimate = min(estimate, self._slots[position])
        self._count += 1
        return estimate

    def estimate(self, key: int) -> int:
        """Estimated occurrence count of *key* (never an underestimate)."""
        return min(self._slots[position] for position in self._positions(key))

    def __len__(self) -> int:
        """Total increments performed."""
        return self._count

    def memory_bytes(self) -> int:
        """Size of the counter array."""
        return len(self._slots)
