"""repro — Real-Time Twitter Recommendation: Online Motif Detection.

A from-scratch reproduction of Gupta et al., "Real-Time Twitter
Recommendation: Online Motif Detection in Large Dynamic Graphs"
(PVLDB 7(13), 2014): the online diamond-motif detection algorithm, the
partitioned/replicated serving architecture, the message-queue and delivery
substrates, the ruled-out baselines, and the declarative motif engine the
paper's conclusion envisions.

Quickstart::

    from repro import DetectionParams, EdgeEvent, MotifEngine
    from repro.gen import TwitterGraphConfig, generate_follow_graph

    snapshot = generate_follow_graph(TwitterGraphConfig(num_users=10_000))
    engine = MotifEngine.from_snapshot(snapshot, DetectionParams(k=2, tau=600))
    recs = engine.process(EdgeEvent(created_at=0.0, actor=42, target=7))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured results.
"""

from repro.core import (
    ActionType,
    DetectionParams,
    DiamondDetector,
    EdgeEvent,
    EngineStats,
    MotifEngine,
    OnlineDetector,
    Recommendation,
    RecommendationBatch,
    RecommendationGroup,
)
from repro.graph import (
    CsrFollowerIndex,
    CsrGraph,
    DynamicEdgeIndex,
    GraphSnapshot,
    StaticFollowerIndex,
    build_follower_snapshot,
)

__version__ = "1.0.0"

__all__ = [
    "ActionType",
    "DetectionParams",
    "DiamondDetector",
    "EdgeEvent",
    "EngineStats",
    "MotifEngine",
    "OnlineDetector",
    "Recommendation",
    "RecommendationBatch",
    "RecommendationGroup",
    "CsrFollowerIndex",
    "CsrGraph",
    "DynamicEdgeIndex",
    "GraphSnapshot",
    "StaticFollowerIndex",
    "build_follower_snapshot",
    "__version__",
]
