"""One partition server: an S shard, a full D copy, detector programs.

"each partition needs to keep the complete D data structure (holding the
incoming B's to C's), since in principle any B can be in any partition.
Thus, every partition needs to handle the entire stream of edge creation
events" — so :meth:`PartitionServer.ingest` is called with *every* event,
while its S shard holds only the A's this partition owns.
"""

from __future__ import annotations

from repro.core.batch import EventBatch
from repro.core.detector import OnlineDetector
from repro.core.diamond import DiamondDetector
from repro.core.engine import MotifEngine
from repro.core.events import EdgeEvent
from repro.core.params import DetectionParams
from repro.core.recommendation import Recommendation, RecommendationBatch
from repro.graph.dynamic_index import DynamicEdgeIndex
from repro.graph.static_index import StaticFollowerIndex


class PartitionServer:
    """A single partition replica (one "machine" of the paper's cluster)."""

    def __init__(
        self,
        partition_id: int,
        replica_id: int,
        static_shard: StaticFollowerIndex,
        params: DetectionParams | None = None,
        detectors: list[OnlineDetector] | None = None,
        dynamic_index: DynamicEdgeIndex | None = None,
        max_edges_per_target: int | None = None,
        track_latency: bool = False,
    ) -> None:
        """Create a partition server.

        Args:
            partition_id: which A-shard this server holds.
            replica_id: replica index within the partition's replica set.
            static_shard: S restricted to this partition's A's.
            params: diamond parameters when using the default detector.
            detectors: custom detector programs (built over *static_shard*
                and *dynamic_index*, with ``inserts_edges=False``).
            dynamic_index: this replica's full D copy (created fresh when
                omitted; never shared between replicas).
            max_edges_per_target: per-C cap for the default D copy.
            track_latency: record per-event detection latency.
        """
        self.partition_id = partition_id
        self.replica_id = replica_id
        params = params or DetectionParams()
        self.params = params
        dynamic_index = dynamic_index or DynamicEdgeIndex(
            retention=params.tau, max_edges_per_target=max_edges_per_target
        )
        if detectors is None:
            detectors = [
                DiamondDetector(
                    static_shard, dynamic_index, params, inserts_edges=False
                )
            ]
        self._engine = MotifEngine(
            static_shard, dynamic_index, detectors, track_latency=track_latency
        )

    @property
    def name(self) -> str:
        """Diagnostic label, e.g. ``p3/r0``."""
        return f"p{self.partition_id}/r{self.replica_id}"

    @property
    def engine(self) -> MotifEngine:
        """The underlying single-machine engine."""
        return self._engine

    # ------------------------------------------------------------------
    # Serving interface
    # ------------------------------------------------------------------

    def ingest(
        self, event: EdgeEvent, now: float | None = None
    ) -> list[Recommendation]:
        """Consume one stream event; returns this shard's local candidates.

        Recipients are guaranteed to be A's owned by this partition (they
        can only come from the local S shard), so brokers can concatenate
        partition outputs without dedup.  ``now`` is the processing time
        for freshness (defaults to the event's creation time).
        """
        return self._engine.process(event, now)

    def ingest_batch(
        self, batch: EventBatch, now: float | None = None
    ) -> list[RecommendationBatch]:
        """Consume a columnar micro-batch; one local candidate batch per event.

        Same semantics as calling :meth:`ingest` per event, with the work
        amortized by the engine's batched path; results stay positionally
        aligned with the batch so brokers can gather per event, and stay
        columnar (:class:`~repro.core.recommendation.RecommendationBatch`)
        so the reply never boxes per candidate.
        """
        return self._engine.process_batch_grouped(batch, now)

    def query_audience(self, target: int, now: float) -> list[int]:
        """Read-only: local A's who currently qualify for *target*."""
        detector = self._engine.detectors[0]
        if not isinstance(detector, DiamondDetector):
            raise TypeError("query_audience requires a DiamondDetector program")
        return detector.current_audience(target, now)

    def prune(self, now: float) -> int:
        """Evict expired D entries."""
        return self._engine.prune(now)

    def reload_static(self, static_shard: StaticFollowerIndex) -> None:
        """Hot-swap this replica's S shard (periodic offline reload)."""
        self._engine.reload_static_index(static_shard)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def memory_bytes(self) -> dict[str, int]:
        """S-shard and D-copy footprints."""
        return self._engine.memory_bytes()

    def events_processed(self) -> int:
        """Stream events this replica has consumed."""
        return self._engine.stats.events_processed
