"""Simulated RPC: virtual latency and failure injection without sleeping.

Benchmarks need two different notions of time:

* **real time** for algorithmic cost (how long does the Python actually
  take) — measured with wall clocks elsewhere;
* **virtual time** for the end-to-end latency experiment (network hops,
  queue delays) — *sampled* from latency models here and threaded through
  the discrete-event simulator, never slept.

``SimulatedChannel`` wraps an endpoint: each call optionally samples a
virtual latency, may fail with an injected probability or because the
endpoint was marked down, and keeps per-channel statistics.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Generic, TypeVar

from repro.util.validation import require_probability

T = TypeVar("T")


class RpcError(RuntimeError):
    """A simulated call failure (endpoint down or injected fault)."""


@dataclass
class RpcStats:
    """Per-channel call accounting."""

    calls: int = 0
    failures: int = 0
    #: Sum of sampled virtual latencies, seconds.
    virtual_latency_total: float = 0.0


@dataclass(frozen=True)
class RpcResult(Generic[T]):
    """A successful call: the value plus its sampled virtual latency."""

    value: T
    latency: float


class SimulatedChannel:
    """A named call path with latency sampling and failure injection."""

    def __init__(
        self,
        name: str,
        latency_model: Callable[[], float] | None = None,
        failure_rate: float = 0.0,
        rng: random.Random | None = None,
    ) -> None:
        """Create a channel.

        Args:
            name: label for diagnostics ("broker->p3/r1").
            latency_model: zero-argument sampler of per-call virtual latency
                in seconds; ``None`` means zero latency.
            failure_rate: probability a call raises :class:`RpcError`.
            rng: randomness for failure injection (required if
                ``failure_rate > 0`` for reproducibility).
        """
        require_probability(failure_rate, "failure_rate")
        if failure_rate > 0.0 and rng is None:
            raise ValueError("failure injection requires an explicit rng")
        self.name = name
        self.available = True
        self._latency_model = latency_model
        self._failure_rate = failure_rate
        self._rng = rng
        self.stats = RpcStats()

    def mark_down(self) -> None:
        """Simulate the endpoint becoming unreachable."""
        self.available = False

    def mark_up(self) -> None:
        """Simulate the endpoint recovering."""
        self.available = True

    def call(self, func: Callable[..., T], *args: object) -> RpcResult[T]:
        """Invoke *func* through the channel.

        Raises:
            RpcError: if the endpoint is down or an injected fault fires.
        """
        self.stats.calls += 1
        if not self.available:
            self.stats.failures += 1
            raise RpcError(f"channel {self.name} is down")
        if self._failure_rate > 0.0 and self._rng.random() < self._failure_rate:
            self.stats.failures += 1
            raise RpcError(f"injected fault on channel {self.name}")
        latency = self._latency_model() if self._latency_model else 0.0
        self.stats.virtual_latency_total += latency
        return RpcResult(value=func(*args), latency=latency)
