"""Shared-memory slabs and the ring protocol behind the ``shm`` transports.

The worker-process transports (PR 5) move every batch through a
``multiprocessing`` queue: pickle the columns, write them down a pipe,
read them back, unpickle.  At firehose rates that copy chain *is* the
cost — the committed E18 numbers show per-partition detection work
dropping while wall clock rises, which is pure wire overhead.  This
module provides the replacement wire: fixed-capacity ring buffers in
``multiprocessing.shared_memory`` segments, where a frame is written
once, in place, as flat numpy columns, and the reader decodes zero-copy
views of the very same bytes.

Layout of one ring segment (all offsets 8-aligned)::

    +---------------------------------------------------------------+
    | ring header (64 B):  head u64 | tail u64 | (reserved)         |
    +---------------------------------------------------------------+
    | slot 0: slot header (64 B) | payload (slot_bytes)             |
    |   seq_open u64 | seq_commit u64 | nbytes u64 | (reserved)     |
    +---------------------------------------------------------------+
    | slot 1 ...                                                    |
    +---------------------------------------------------------------+

The protocol is single-producer / single-consumer (one ring per
direction per worker) with a seqlock-style per-slot handoff:

* **writer** — waits until ``head - tail < slots`` (full-ring
  backpressure; the *reader* never blocks the writer mid-copy, only a
  completely full ring does), stamps ``seq_open = head + 1``, writes the
  payload, stamps ``nbytes`` and ``seq_commit = head + 1``, and finally
  publishes ``head = head + 1``.
* **reader** — waits until ``tail < head``, checks
  ``seq_open == seq_commit == tail + 1`` (a mismatch is a torn frame:
  the writer died mid-write or the slot was corrupted), consumes the
  payload *in place*, and releases the slot with ``tail = tail + 1``.
  Nothing about the slot may be touched after release — the writer is
  free to overwrite it immediately.

Memory-ordering note: the counters and sequence stamps are aligned
8-byte stores issued one bytecode at a time by CPython, and the commit
stamp is checked on the read side — on the x86-TSO machines this repo
benches on the handoff is safe without fences; the torn-frame check is
the belt over those braces.

Cleanup discipline: ring segments are created (and therefore owned) by
the parent process only.  Workers *attach* by name and close their
mapping on exit; the parent unlinks every segment in ``close()`` —
including the slabs of workers that died mid-batch (dead-worker slab
reclamation) — and a module-level ``atexit`` sweep unlinks anything a
crashed caller left behind, so ``/dev/shm`` never accumulates orphans.
The serving arenas (:class:`ShmArena`) extend the discipline to
*worker-created* segments: a worker that allocates a growth segment
derives its name deterministically from a parent-owned control segment,
so the parent can reclaim it by name (:func:`unlink_segment`) even after
a ``kill -9`` left no owner alive.
"""

from __future__ import annotations

import atexit
import os
import secrets
import time
from multiprocessing import shared_memory
from typing import Callable, NamedTuple

import numpy as np

from repro.util.validation import require, require_positive

__all__ = [
    "ARENA_HEADER_BYTES",
    "DEFAULT_SLOTS",
    "DEFAULT_SLOT_BYTES",
    "RING_HEADER_BYTES",
    "SLOT_HEADER_BYTES",
    "TornFrameError",
    "ShmArena",
    "ShmRing",
    "RingPairSpec",
    "shm_available",
    "live_segment_names",
    "sweep_segments",
    "unlink_segment",
]

#: Slots per ring lane.  Bounds the pipelining depth a transport can
#: stack (see ``SharedMemoryTransport``): with equal request and reply
#: rings, fewer than ``slots`` outstanding submits guarantees neither
#: endpoint can deadlock on a full ring.
DEFAULT_SLOTS = 8

#: Payload capacity per slot.  A 512-event batch is ~13 KB and a typical
#: grouped reply a few hundred KB; 1 MiB keeps the fallback rate near
#: zero on the benchmarked workloads while costing 16 MiB per worker
#: (two lanes x 8 slots).
DEFAULT_SLOT_BYTES = 1 << 20

RING_HEADER_BYTES = 64
SLOT_HEADER_BYTES = 64

#: Escalating poll sleeps for ring waits: a couple of immediate rechecks,
#: then exponential backoff capped at 1 ms so an idle endpoint yields its
#: core (on one-core hosts the peer needs it) without adding more than
#: ~1 ms of wake-up latency to a multi-millisecond batch.
_POLL_INITIAL = 20e-6
_POLL_MAX = 1e-3

#: Liveness callbacks are only consulted this often (seconds) — they can
#: be as expensive as a waitpid.
_LIVENESS_INTERVAL = 0.05


class TornFrameError(RuntimeError):
    """A slot's sequence stamps are inconsistent with the ring counters.

    Seen when the writer died between opening and committing a frame (or
    the slab was corrupted); the frame's bytes must not be trusted.
    """


class RingPairSpec(NamedTuple):
    """Picklable handle a worker uses to attach its two ring lanes."""

    request_name: str
    reply_name: str
    slots: int
    slot_bytes: int


#: Segments created (owned) by this process, by name.  ``sweep_segments``
#: — called from transport ``close()`` paths and at interpreter exit —
#: unlinks them, so even an abnormal exit leaves ``/dev/shm`` clean.
_OWNED_SEGMENTS: dict[str, shared_memory.SharedMemory] = {}
_NAME_COUNTER = 0


def _next_segment_name() -> str:
    """A collision-proof, greppable segment name (``/dev/shm/repro_shm_*``)."""
    global _NAME_COUNTER
    _NAME_COUNTER += 1
    return f"repro_shm_{os.getpid()}_{_NAME_COUNTER}_{secrets.token_hex(3)}"


def live_segment_names() -> list[str]:
    """Names of segments this process currently owns (tests, sweeps)."""
    return sorted(_OWNED_SEGMENTS)


def sweep_segments(names: "list[str] | None" = None) -> int:
    """Close + unlink owned segments (all of them when *names* is None).

    Idempotent and tolerant: a segment already unlinked (e.g. by the
    resource tracker after a crash) is skipped silently.  Returns the
    number of segments reclaimed.
    """
    targets = list(_OWNED_SEGMENTS) if names is None else list(names)
    reclaimed = 0
    for name in targets:
        segment = _OWNED_SEGMENTS.pop(name, None)
        if segment is None:
            continue
        try:
            segment.close()
        except BufferError:
            # A caller-held view still pins the mapping; the mapping dies
            # with the views, but the /dev/shm entry must go now.
            pass
        try:
            segment.unlink()
            reclaimed += 1
        except (FileNotFoundError, OSError):
            pass
    return reclaimed


def unlink_segment(name: str) -> bool:
    """Close + unlink one segment by *name*, owned by this process or not.

    The serving-arena reclamation primitive: arena growth segments are
    created by *worker* processes under names derived from a parent-owned
    control segment, so after a ``kill -9`` the parent reclaims them by
    name without ever having held a handle.  Tolerant and idempotent —
    a name that is already gone returns False silently.  Unlinking never
    invalidates existing mappings (POSIX removes the name only), so
    readers attached to the segment keep working.
    """
    segment = _OWNED_SEGMENTS.pop(name, None)
    if segment is None:
        try:
            segment = shared_memory.SharedMemory(name=name)
        except (FileNotFoundError, OSError, ValueError):
            return False
    try:
        segment.close()
    except (OSError, BufferError):
        pass
    try:
        segment.unlink()
        return True
    except (FileNotFoundError, OSError):
        return False


atexit.register(sweep_segments)

_SHM_AVAILABLE: bool | None = None


def shm_available() -> bool:
    """Whether POSIX shared memory works on this host (cached probe).

    Containers without a ``/dev/shm`` mount (and some locked-down CI
    sandboxes) fail segment creation; transports and tests gate on this
    so the shm path degrades to a skip instead of an error.
    """
    global _SHM_AVAILABLE
    if _SHM_AVAILABLE is None:
        try:
            probe = shared_memory.SharedMemory(
                create=True, size=64, name=_next_segment_name()
            )
            probe.close()
            probe.unlink()
            _SHM_AVAILABLE = True
        except Exception:
            _SHM_AVAILABLE = False
    return _SHM_AVAILABLE


def _wait(
    poll: Callable[[], object],
    is_peer_alive: Callable[[], bool] | None = None,
    timeout: float | None = None,
) -> object:
    """Poll *poll* until it returns non-None, with backoff and liveness.

    Returns the poll value, or None when *timeout* elapsed or the peer
    died (after one final poll, covering the committed-then-died race).
    """
    value = poll()
    if value is not None:
        return value
    deadline = None if timeout is None else time.monotonic() + timeout
    next_liveness = time.monotonic() + _LIVENESS_INTERVAL
    sleep = _POLL_INITIAL
    while True:
        time.sleep(sleep)
        sleep = min(sleep * 2.0, _POLL_MAX)
        value = poll()
        if value is not None:
            return value
        now = time.monotonic()
        if deadline is not None and now >= deadline:
            return None
        if is_peer_alive is not None and now >= next_liveness:
            if not is_peer_alive():
                return poll()  # final drain: frame committed before death
            next_liveness = now + _LIVENESS_INTERVAL


class ShmRing:
    """One single-producer/single-consumer slot ring in a shm segment.

    Create with :meth:`create` (parent, owns the segment) or
    :meth:`attach` (worker, maps an existing segment).  Each endpoint
    uses exactly one side of the API: ``acquire_slot``/``commit_slot``
    as the writer, ``acquire_frame``/``release_frame`` as the reader.
    """

    __slots__ = ("name", "slots", "slot_bytes", "_shm", "_mem", "_ctrl", "_owner")

    def __init__(
        self,
        segment: shared_memory.SharedMemory,
        slots: int,
        slot_bytes: int,
        owner: bool,
    ) -> None:
        self.name = segment.name
        self.slots = slots
        self.slot_bytes = slot_bytes
        self._shm = segment
        self._mem = np.frombuffer(segment.buf, dtype=np.uint8)
        self._ctrl = self._mem[:16].view(np.uint64)  # [head, tail]
        self._owner = owner

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @staticmethod
    def segment_bytes(slots: int, slot_bytes: int) -> int:
        """Total segment size for a ring of the given shape."""
        return RING_HEADER_BYTES + slots * (SLOT_HEADER_BYTES + slot_bytes)

    @classmethod
    def create(cls, slots: int, slot_bytes: int) -> "ShmRing":
        """Allocate a fresh ring segment (parent side; owns the unlink)."""
        require_positive(slots, "slots")
        require_positive(slot_bytes, "slot_bytes")
        require(slot_bytes % 8 == 0, "slot_bytes must be 8-byte aligned")
        name = _next_segment_name()
        segment = shared_memory.SharedMemory(
            create=True, size=cls.segment_bytes(slots, slot_bytes), name=name
        )
        # Fresh POSIX shm is zero-filled, so head = tail = 0 already holds;
        # stamp explicitly anyway — the protocol must not depend on it.
        ring = cls(segment, slots, slot_bytes, owner=True)
        ring._ctrl[0] = 0
        ring._ctrl[1] = 0
        _OWNED_SEGMENTS[name] = segment
        return ring

    @classmethod
    def attach(cls, name: str, slots: int, slot_bytes: int) -> "ShmRing":
        """Map an existing ring segment (worker side; never unlinks)."""
        segment = shared_memory.SharedMemory(name=name)
        return cls(segment, slots, slot_bytes, owner=False)

    def close(self) -> None:
        """Drop this mapping (and unlink when owner).  Idempotent."""
        # The numpy views pin the exported buffer; break them first or
        # SharedMemory.close() raises BufferError.
        self._ctrl = None
        self._mem = None
        if self._owner:
            sweep_segments([self.name])
        else:
            try:
                self._shm.close()
            except (OSError, BufferError):
                pass

    # ------------------------------------------------------------------
    # Shared state reads
    # ------------------------------------------------------------------

    def occupancy(self) -> int:
        """Committed-but-unreleased frames currently in the ring."""
        ctrl = self._ctrl
        return int(ctrl[0]) - int(ctrl[1])

    def _slot_base(self, seq: int) -> int:
        return RING_HEADER_BYTES + (seq % self.slots) * (
            SLOT_HEADER_BYTES + self.slot_bytes
        )

    # ------------------------------------------------------------------
    # Writer side
    # ------------------------------------------------------------------

    def try_acquire_slot(self) -> "np.ndarray | None":
        """The next free slot's payload view, or None when the ring is full.

        Opens the slot (``seq_open`` stamped) but publishes nothing until
        :meth:`commit_slot`; abandoning an acquired slot is harmless.
        """
        head = int(self._ctrl[0])
        if head - int(self._ctrl[1]) >= self.slots:
            return None
        base = self._slot_base(head)
        header = self._mem[base : base + 24].view(np.uint64)
        header[0] = head + 1  # seq_open
        payload_base = base + SLOT_HEADER_BYTES
        return self._mem[payload_base : payload_base + self.slot_bytes]

    def acquire_slot(
        self,
        is_peer_alive: Callable[[], bool] | None = None,
        timeout: float | None = None,
    ) -> "np.ndarray | None":
        """Blocking :meth:`try_acquire_slot` (None on timeout/dead peer)."""
        return _wait(self.try_acquire_slot, is_peer_alive, timeout)

    def commit_slot(self, nbytes: int) -> None:
        """Publish the acquired slot's first *nbytes* as one frame."""
        require(0 <= nbytes <= self.slot_bytes, "frame exceeds slot capacity")
        head = int(self._ctrl[0])
        base = self._slot_base(head)
        header = self._mem[base : base + 24].view(np.uint64)
        header[2] = nbytes
        header[1] = head + 1  # seq_commit: payload is complete
        self._ctrl[0] = head + 1  # publish

    # ------------------------------------------------------------------
    # Reader side
    # ------------------------------------------------------------------

    def try_acquire_frame(self) -> "np.ndarray | None":
        """The oldest committed frame's payload view, or None when empty.

        Raises:
            TornFrameError: the slot's stamps disagree with the counters.
        """
        tail = int(self._ctrl[1])
        if tail >= int(self._ctrl[0]):
            return None
        seq = tail + 1
        base = self._slot_base(tail)
        header = self._mem[base : base + 24].view(np.uint64)
        if int(header[0]) != seq or int(header[1]) != seq:
            raise TornFrameError(
                f"ring {self.name}: slot for seq {seq} holds "
                f"open={int(header[0])} commit={int(header[1])}"
            )
        nbytes = int(header[2])
        payload_base = base + SLOT_HEADER_BYTES
        return self._mem[payload_base : payload_base + nbytes]

    def acquire_frame(
        self,
        is_peer_alive: Callable[[], bool] | None = None,
        timeout: float | None = None,
    ) -> "np.ndarray | None":
        """Blocking :meth:`try_acquire_frame` (None on timeout/dead peer)."""
        return _wait(self.try_acquire_frame, is_peer_alive, timeout)

    def release_frame(self) -> None:
        """Hand the oldest frame's slot back to the writer.

        Every view returned by ``acquire_frame`` — and everything decoded
        zero-copy from it — is invalid after this call.
        """
        self._ctrl[1] = int(self._ctrl[1]) + 1


class RingPair:
    """One worker's wire: a request ring (parent writes) + reply ring.

    The parent :meth:`create`\\ s the pair (owning both segments) and
    ships the picklable :attr:`spec` to the worker, which
    :meth:`attach`\\ es.  The rings are the worker's sole message
    *ordering* channel; payloads that cannot travel as a frame (control
    tuples, slot-overflow batches) go on the existing mp queues announced
    by a ``FRAME_PICKLE`` marker — queue payload first, marker second, so
    a consumed marker's payload is already in flight.

    The parent-side instance also carries the wire's telemetry counters
    (frames vs. pickle fallbacks), which the transports aggregate into
    ``wire_stats()`` for the monitor.
    """

    __slots__ = (
        "request",
        "reply",
        "frames_shm",
        "frames_fallback",
        "control_pickle",
    )

    def __init__(self, request: ShmRing, reply: ShmRing) -> None:
        self.request = request
        self.reply = reply
        self.frames_shm = 0
        self.frames_fallback = 0
        self.control_pickle = 0

    @classmethod
    def create(
        cls,
        slots: int = DEFAULT_SLOTS,
        slot_bytes: int = DEFAULT_SLOT_BYTES,
    ) -> "RingPair":
        request = ShmRing.create(slots, slot_bytes)
        try:
            reply = ShmRing.create(slots, slot_bytes)
        except Exception:
            request.close()
            raise
        return cls(request, reply)

    @classmethod
    def attach(cls, spec: RingPairSpec) -> "RingPair":
        request = ShmRing.attach(spec.request_name, spec.slots, spec.slot_bytes)
        reply = ShmRing.attach(spec.reply_name, spec.slots, spec.slot_bytes)
        return cls(request, reply)

    @property
    def spec(self) -> RingPairSpec:
        return RingPairSpec(
            self.request.name,
            self.reply.name,
            self.request.slots,
            self.request.slot_bytes,
        )

    def post_control(
        self,
        queue,
        message: tuple,
        is_peer_alive: Callable[[], bool] | None = None,
        timeout: float | None = 1.0,
    ) -> bool:
        """Send a pickled *message* down the wire (payload, then marker).

        Returns False when no request slot could be acquired (peer dead,
        or ring wedged past *timeout* — the caller's forceful-shutdown
        path covers that).
        """
        from repro.core.wire import FRAME_PICKLE, write_frame

        queue.put(message)
        mem = self.request.acquire_slot(is_peer_alive, timeout)
        if mem is None:
            return False
        self.request.commit_slot(write_frame(mem, FRAME_PICKLE))
        self.control_pickle += 1
        return True

    def close(self) -> None:
        """Drop both ring mappings (owner side also unlinks).  Idempotent."""
        self.request.close()
        self.reply.close()

    #: Parent-side name for :meth:`close`: reclaims the slabs (unlink).
    destroy = close


#: Control-word area at the front of every arena segment: eight ``u64``
#: words whose meaning the arena's protocol defines (the serving arena
#: uses them for its structural seqlock, generation counter, and
#: writer-published gauges).
ARENA_HEADER_BYTES = 64

#: Arena array fields: ``(name, dtype, shape)`` triples.  Offsets are
#: assigned sequentially after the header, each 8-aligned, so any two
#: processes carving the same field list see the same layout.
ArenaFields = "list[tuple[str, np.dtype, tuple[int, ...]]]"


def _arena_layout(fields) -> tuple[int, list[tuple[str, np.dtype, tuple, int]]]:
    """(total segment bytes, [(name, dtype, shape, byte offset)])."""
    offset = ARENA_HEADER_BYTES
    placed = []
    for name, dtype, shape in fields:
        dtype = np.dtype(dtype)
        offset = (offset + 7) & ~7
        placed.append((name, dtype, tuple(shape), offset))
        offset += int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
    return offset, placed


class ShmArena:
    """One shm segment carving a ``u64`` header plus named numpy arrays.

    The building block under the in-worker serving caches: a writer
    process :meth:`create`\\ s a segment whose layout is a pure function
    of its field list, and any other process :meth:`attach`\\ es the same
    fields (or :meth:`attach_dynamic` when the shapes themselves live in
    the header) and sees the very same bytes as numpy views — no copies,
    no pickling.  Fresh POSIX shm is zero-filled, which the serving
    table's probe loops rely on (an unwritten slot reads as empty).

    Concurrency is the *caller's* protocol: this class only maps memory.
    Ownership follows creation — a created segment lands in the module
    sweep list (unlinked at ``close()``/``atexit``), an attached one is
    never unlinked by :meth:`close`.
    """

    __slots__ = ("name", "_shm", "_mem", "header", "arrays", "_owner")

    def __init__(
        self, segment: shared_memory.SharedMemory, fields, owner: bool
    ) -> None:
        self.name = segment.name
        self._shm = segment
        self._mem = np.frombuffer(segment.buf, dtype=np.uint8)
        self.header = self._mem[:ARENA_HEADER_BYTES].view(np.uint64)
        self._owner = owner
        self.arrays: dict[str, np.ndarray] = {}
        for field_name, dtype, shape, offset in _arena_layout(fields)[1]:
            nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
            self.arrays[field_name] = (
                self._mem[offset : offset + nbytes].view(dtype).reshape(shape)
            )

    @staticmethod
    def segment_bytes(fields) -> int:
        """Total segment size for the given field list."""
        return _arena_layout(fields)[0]

    @classmethod
    def create(cls, fields, name: str | None = None) -> "ShmArena":
        """Allocate a fresh, zero-filled arena segment (creator owns it)."""
        name = name or _next_segment_name()
        segment = shared_memory.SharedMemory(
            create=True, size=cls.segment_bytes(fields), name=name
        )
        _OWNED_SEGMENTS[name] = segment
        return cls(segment, fields, owner=True)

    @classmethod
    def attach(cls, name: str, fields) -> "ShmArena":
        """Map an existing arena with a known field list (never unlinks)."""
        return cls(shared_memory.SharedMemory(name=name), fields, owner=False)

    @classmethod
    def attach_dynamic(cls, name: str, fields_from_header) -> "ShmArena":
        """Attach when the field shapes live in the segment's own header.

        *fields_from_header* receives the ``u64`` header view and returns
        the field list — the serving arena stores (capacity, k) in its
        data header, so a reader can attach any generation knowing only
        its name.
        """
        segment = shared_memory.SharedMemory(name=name)
        header = (
            np.frombuffer(segment.buf, dtype=np.uint8)[:ARENA_HEADER_BYTES]
            .view(np.uint64)
        )
        fields = fields_from_header(header)
        del header
        return cls(segment, fields, owner=False)

    def nbytes(self) -> int:
        """Mapped bytes (the full segment)."""
        return 0 if self._mem is None else int(self._mem.nbytes)

    def release(self) -> None:
        """Drop this handle's views without closing mapping or name.

        For creators that only needed to allocate + zero-init: ownership
        stays in the module sweep list (the name is reclaimed later by
        ``sweep_segments``/``unlink_segment``), while other handles keep
        attaching by name.
        """
        self.header = None
        self.arrays = {}
        self._mem = None

    def try_close_mapping(self) -> bool:
        """Release views and close the mapping if nothing else exports it.

        For retiring an old generation whose *name* is already unlinked:
        the mapping can only be unmapped once every external numpy view
        into it has died (``mmap`` refuses while exported pointers
        exist).  Returns True once the mapping is closed; the caller
        retries later on False — never letting the segment reach GC with
        live views, which would spray ``BufferError`` from ``__del__``.
        """
        self.release()
        try:
            self._shm.close()
            return True
        except BufferError:
            return False
        except OSError:
            return True  # already closed

    def close(self) -> None:
        """Drop this mapping (and unlink when owner).  Idempotent."""
        self.release()
        if self._owner:
            sweep_segments([self.name])
        else:
            try:
                self._shm.close()
            except (OSError, BufferError):
                pass

    def __del__(self) -> None:
        # Drop our views before the SharedMemory slot is torn down —
        # otherwise its __del__ hits the mmap while our exports are
        # still alive and sprays an ignored BufferError.
        try:
            self.release()
        except Exception:
            pass
