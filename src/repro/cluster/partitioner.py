"""Partitioning of the A's across partition servers.

The paper partitions by the *source* vertices of S ("each partition holds a
disjoint set of source vertices for the S data structure"), so every
adjacency-list intersection is local to one partition.  The same B may
appear in many partitions; that is by design.
"""

from __future__ import annotations

from typing import Protocol

from repro.graph.ids import UserId
from repro.util.validation import require_positive

_MASK64 = (1 << 64) - 1


def _splitmix64(value: int) -> int:
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


class Partitioner(Protocol):
    """Assigns each A to exactly one partition."""

    num_partitions: int

    def partition_of(self, a: UserId) -> int:
        """The partition index in ``[0, num_partitions)`` owning *a*."""
        ...


class HashPartitioner:
    """Stable hash partitioning (production default).

    Uses SplitMix64 rather than Python's ``hash`` so the assignment is
    identical across processes and Python versions — replicas and offline
    loaders must agree on ownership.
    """

    def __init__(self, num_partitions: int) -> None:
        require_positive(num_partitions, "num_partitions")
        self.num_partitions = num_partitions

    def partition_of(self, a: UserId) -> int:
        """Owner partition of *a*."""
        return _splitmix64(a) % self.num_partitions


class ModuloPartitioner:
    """``a % P`` partitioning — transparent, for tests and worked examples."""

    def __init__(self, num_partitions: int) -> None:
        require_positive(num_partitions, "num_partitions")
        self.num_partitions = num_partitions

    def partition_of(self, a: UserId) -> int:
        """Owner partition of *a*."""
        return a % self.num_partitions
