"""Brokers: fan-out / gather coordination over all partitions.

"The final design is a fairly standard partitioned, replicated architecture
with coordination handled by brokers that fan-out queries and gather
results."  A broker receives each live edge event, fans it out to every
partition's replica set (because D is fully replicated, every partition
must see every event), and gathers the per-partition candidate lists.
Partitions own disjoint A's, so gathering is pure concatenation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.replica import AllReplicasDown, ReplicaSet
from repro.core.batch import EventBatch
from repro.core.events import EdgeEvent
from repro.core.recommendation import (
    EMPTY_RECOMMENDATION_BATCH,
    Recommendation,
    RecommendationBatch,
)
from repro.util.validation import require


@dataclass
class BrokerStats:
    """Coordination accounting for one broker."""

    events_routed: int = 0
    fan_out_calls: int = 0
    gather_results: int = 0
    partitions_lost_events: int = 0


class Broker:
    """Fans each event out to all partitions and gathers candidates."""

    def __init__(self, replica_sets: list[ReplicaSet]) -> None:
        """Create a broker over the given replica sets (one per partition)."""
        require(len(replica_sets) >= 1, "a broker needs at least one partition")
        self.replica_sets = list(replica_sets)
        self.stats = BrokerStats()

    @property
    def num_partitions(self) -> int:
        """Partition count behind this broker."""
        return len(self.replica_sets)

    def process_event(
        self, event: EdgeEvent, now: float | None = None
    ) -> tuple[list[Recommendation], float]:
        """Route one live edge through the whole cluster.

        Returns the gathered candidates and the virtual fan-out latency
        (the slowest partition's ack, since the gather barrier waits for
        everyone).  ``now`` is the broker's processing clock, forwarded to
        the detectors for freshness evaluation.

        Partitions whose replicas are all down lose the event — the broker
        keeps serving the healthy shards, trading completeness for
        availability exactly like the production system would.
        """
        gathered: list[Recommendation] = []
        worst_latency = 0.0
        self.stats.events_routed += 1
        for replica_set in self.replica_sets:
            self.stats.fan_out_calls += 1
            try:
                local, latency = replica_set.ingest(event, now)
            except AllReplicasDown:
                self.stats.partitions_lost_events += 1
                continue
            worst_latency = max(worst_latency, latency)
            gathered.extend(local)
        self.stats.gather_results += len(gathered)
        return gathered, worst_latency

    def process_batch(
        self, batch: EventBatch, now: float | None = None
    ) -> tuple[list[RecommendationBatch], float]:
        """Route a columnar micro-batch through the whole cluster.

        Batched RPC accounting: each partition's replica set is reached by
        *one* fan-out call carrying the whole batch (one virtual round-trip
        per batch, matching how production brokers pipeline), so
        ``stats.fan_out_calls`` grows per batch instead of per event.

        Returns the gathered candidates positionally aligned with the batch
        (one columnar :class:`~repro.core.recommendation
        .RecommendationBatch` per event; partitions own disjoint A's, so
        gathering is per-event group concatenation — the recipient columns
        are never unboxed in flight) plus the slowest partition's ack
        latency.  Partitions whose replicas are all down lose the whole
        batch.
        """
        n = len(batch)
        gathered: list[RecommendationBatch] = [EMPTY_RECOMMENDATION_BATCH] * n
        worst_latency = 0.0
        self.stats.events_routed += n
        total = 0
        for replica_set in self.replica_sets:
            self.stats.fan_out_calls += 1
            try:
                local, latency = replica_set.ingest_batch(batch, now)
            except AllReplicasDown:
                self.stats.partitions_lost_events += n
                continue
            worst_latency = max(worst_latency, latency)
            for i, recs in enumerate(local):
                size = len(recs)
                if size:
                    gathered[i] = gathered[i].concat(recs)
                    total += size
        self.stats.gather_results += total
        return gathered, worst_latency

    def query_audience(self, target: int, now: float) -> tuple[list[int], float]:
        """Fan a read-only audience query out to all partitions and merge."""
        audience: list[int] = []
        worst_latency = 0.0
        for replica_set in self.replica_sets:
            try:
                local, latency = replica_set.query_audience(target, now)
            except AllReplicasDown:
                continue
            worst_latency = max(worst_latency, latency)
            audience.extend(local)
        return sorted(audience), worst_latency
