"""Brokers: fan-out / gather coordination over all partitions.

"The final design is a fairly standard partitioned, replicated architecture
with coordination handled by brokers that fan-out queries and gather
results."  A broker receives each live edge event, fans it out to every
partition's replica set (because D is fully replicated, every partition
must see every event), and gathers the per-partition candidate lists.
Partitions own disjoint A's, so gathering is pure concatenation.

The fan-out itself goes through a pluggable
:class:`~repro.cluster.transport.PartitionTransport`: the default
:class:`~repro.cluster.transport.InProcessTransport` preserves the classic
direct-call behavior (partitions in this process, simulated channel
latency), while :class:`~repro.cluster.transport.WorkerProcessTransport`
hosts each partition in its own worker process for real parallelism.  The
broker's submit/gather split means the fan-out is asynchronous whenever
the transport is: every partition receives the batch before any result is
awaited.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.cluster.transport import InProcessTransport, PartitionTransport
from repro.core.batch import EventBatch
from repro.core.events import EdgeEvent
from repro.core.recommendation import (
    EMPTY_RECOMMENDATION_BATCH,
    Recommendation,
    RecommendationBatch,
)
from repro.util.validation import require

if TYPE_CHECKING:  # runtime cycle: replica -> rpc only, broker -> transport
    from repro.cluster.replica import ReplicaSet


@dataclass
class BrokerStats:
    """Coordination accounting for one broker."""

    events_routed: int = 0
    fan_out_calls: int = 0
    gather_results: int = 0
    partitions_lost_events: int = 0


class Broker:
    """Fans each event out to all partitions and gathers candidates."""

    def __init__(
        self,
        replica_sets: "list[ReplicaSet] | None" = None,
        transport: PartitionTransport | None = None,
    ) -> None:
        """Create a broker over replica sets or an explicit transport.

        Args:
            replica_sets: the classic construction — one replica set per
                partition, wrapped in an :class:`InProcessTransport`.
            transport: a prebuilt transport (exclusive with
                *replica_sets*); this is how worker-process partitions are
                parked behind a broker.
        """
        if transport is None:
            require(
                replica_sets is not None and len(replica_sets) >= 1,
                "a broker needs at least one partition",
            )
            transport = InProcessTransport(replica_sets)
        else:
            require(
                replica_sets is None,
                "pass replica_sets or transport, not both",
            )
        self.transport = transport
        self.stats = BrokerStats()
        #: Sizes of submitted-but-ungathered batches, FIFO — the broker
        #: records them at submit so gathers can never be mis-paired.
        self._inflight_sizes: deque[int] = deque()

    @property
    def num_partitions(self) -> int:
        """Partition count behind this broker."""
        return self.transport.num_partitions

    @property
    def replica_sets(self) -> "list[ReplicaSet]":
        """The partitions, when they live in this process.

        Raises:
            RuntimeError: under a cross-process transport — the replica
                sets live in the workers; use the transport's control
                messages (``health``, ``prune``) instead.
        """
        local = self.transport.local_replica_sets
        if local is None:
            raise RuntimeError(
                "replica sets are not local under this transport; use "
                "transport.health() / transport.prune() control messages"
            )
        return local

    def process_event(
        self, event: EdgeEvent, now: float | None = None
    ) -> tuple[list[Recommendation], float]:
        """Route one live edge through the whole cluster.

        Returns the gathered candidates and the virtual fan-out latency
        (the slowest partition's ack, since the gather barrier waits for
        everyone).  ``now`` is the broker's processing clock, forwarded to
        the detectors for freshness evaluation.

        Partitions whose replicas are all down lose the event — the broker
        keeps serving the healthy shards, trading completeness for
        availability exactly like the production system would.
        """
        gathered: list[Recommendation] = []
        worst_latency = 0.0
        self.stats.events_routed += 1
        self.stats.fan_out_calls += self.transport.num_partitions
        self.transport.submit_event(event, now)
        for reply in self.transport.gather_event():
            if reply.lost:
                self.stats.partitions_lost_events += 1
                continue
            worst_latency = max(worst_latency, reply.latency)
            gathered.extend(reply.recommendations)
        self.stats.gather_results += len(gathered)
        return gathered, worst_latency

    def submit_batch(self, batch: EventBatch, now: float | None = None) -> None:
        """Fan a columnar micro-batch out without awaiting results.

        One fan-out call per partition per batch (pipelined RPC
        accounting).  Pair each submit with one :meth:`gather_batch`;
        submits may be stacked ahead of the gathers when the transport
        pipelines (the worker transport does, the in-process one degrades
        to synchronous execution at submit time).
        """
        self.stats.events_routed += len(batch)
        self.stats.fan_out_calls += self.transport.num_partitions
        self._inflight_sizes.append(len(batch))
        self.transport.submit_batch(batch, now)

    def gather_batch(self) -> tuple[list[RecommendationBatch], float]:
        """Gather the oldest outstanding batch's replies.

        The batch's size was recorded at submit, so callers never pair a
        gather with the wrong event count.

        Returns the gathered candidates positionally aligned with the batch
        (one columnar :class:`~repro.core.recommendation
        .RecommendationBatch` per event; partitions own disjoint A's, so
        gathering is per-event group concatenation — the recipient columns
        are never unboxed in flight) plus the slowest partition's ack
        latency.  Partitions whose replicas are all down — or whose worker
        process died — lose the whole batch.
        """
        require(len(self._inflight_sizes) > 0, "gather without a submit")
        n = self._inflight_sizes.popleft()
        gathered: list[RecommendationBatch] = [EMPTY_RECOMMENDATION_BATCH] * n
        worst_latency = 0.0
        total = 0
        for reply in self.transport.gather_batch():
            if reply.lost:
                self.stats.partitions_lost_events += n
                continue
            worst_latency = max(worst_latency, reply.latency)
            for i, recs in enumerate(reply.grouped):
                size = len(recs)
                if size:
                    gathered[i] = gathered[i].concat(recs)
                    total += size
        self.stats.gather_results += total
        return gathered, worst_latency

    def process_batch(
        self, batch: EventBatch, now: float | None = None
    ) -> tuple[list[RecommendationBatch], float]:
        """Route a columnar micro-batch through the whole cluster.

        Submit to every partition, then gather — under a worker transport
        the partitions process the batch genuinely in parallel and the
        gather barrier waits for the slowest one, matching how production
        brokers pipeline.  ``stats.fan_out_calls`` grows per batch instead
        of per event.
        """
        self.submit_batch(batch, now)
        return self.gather_batch()

    def query_audience(self, target: int, now: float) -> tuple[list[int], float]:
        """Fan a read-only audience query out to all partitions and merge."""
        audience: list[int] = []
        worst_latency = 0.0
        for local, latency in self.transport.query_audience(target, now):
            worst_latency = max(worst_latency, latency)
            audience.extend(local)
        return sorted(audience), worst_latency
