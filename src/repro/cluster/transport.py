"""The transport layer between a broker and its partitions.

The paper's final design is "a fairly standard partitioned, replicated
architecture with coordination handled by brokers that fan-out queries and
gather results".  Until this layer existed, that fan-out was *simulated*:
the broker called every partition's replica set directly inside one Python
process and summed sampled virtual latencies — which measures a fan-out
penalty, never a speedup.  :class:`PartitionTransport` makes the call path
pluggable:

* :class:`InProcessTransport` — the original direct-call path with
  :class:`~repro.cluster.rpc.SimulatedChannel` latency sampling.  Behavior
  preserving; still the default, and the right lane for tests and for the
  discrete-event latency simulation.
* :class:`WorkerProcessTransport` — each partition's replica set hosted in
  a ``multiprocessing`` worker, fed over queues carrying the *columnar*
  wire format (:mod:`repro.core.wire` — flat numpy columns, never boxed
  events).  Fan-out is asynchronous: the broker submits one batch to every
  partition's request queue and only then gathers, so partitions genuinely
  chew in parallel, and multiple batches may be submitted before the first
  gather (pipelining — the parent encodes batch *i+1* while the workers
  process batch *i*).
* :class:`SharedMemoryTransport` — same worker fleet, but batches and
  grouped replies cross as *slab frames*: flat columns written once into
  per-worker ``multiprocessing.shared_memory`` ring buffers
  (:mod:`repro.cluster.shm`) and decoded as zero-copy views on the other
  side — no pickling, no pipe write, no second copy.  Control messages
  and any frame too large for a ring slot fall back to the pickle wire
  behind an in-ring marker, so the ring stays the sole ordering channel
  and oversized bursts degrade instead of failing (the fallback rate is
  counted in ``wire_stats()``).

Both transports speak the same tiny protocol: submit/gather for event
batches, plus health / prune / audience control messages, plus graceful
``close``.  A worker that dies mid-batch is detected at gather time, its
partition's events are reported as lost (the broker counts them in
``partitions_lost_events``), and the transport keeps serving the healthy
partitions — the same availability-over-completeness trade the replica
layer makes.
"""

from __future__ import annotations

import multiprocessing
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.cluster.shm import (
    DEFAULT_SLOT_BYTES,
    DEFAULT_SLOTS,
    RingPair,
    TornFrameError,
    shm_available,
    sweep_segments,
)
from repro.core.batch import EventBatch
from repro.core.checkpoint import (
    dynamic_index_arrays,
    restore_dynamic_arrays,
)
from repro.core.events import EdgeEvent
from repro.core.recommendation import Recommendation, RecommendationBatch
from repro.core.wire import (
    FRAME_EVENT_BATCH,
    FRAME_LOST,
    FRAME_PICKLE,
    decode_event_batch,
    decode_grouped,
    encode_event_batch,
    encode_grouped,
    event_batch_from_frame,
    frame_event_batch,
    frame_grouped,
    grouped_payload_from_frame,
    read_frame,
    write_frame,
)
from repro.util.procpool import (
    WorkerHandle,
    default_start_method,
    poll_queue,
    receive_reply,
    spawn_worker,
    stop_workers,
)
from repro.util.validation import require

if TYPE_CHECKING:  # circular at runtime: replica imports nothing from here
    import numpy as np

    from repro.cluster.replica import ReplicaSet
    from repro.graph.static_index import StaticFollowerIndex

__all__ = [
    "TRANSPORTS",
    "PartitionTransport",
    "PartitionReply",
    "EventReply",
    "ReplicaHealthSnapshot",
    "PartitionHealthSnapshot",
    "InProcessTransport",
    "WorkerProcessTransport",
    "SharedMemoryTransport",
    "default_start_method",
]

#: Transport names accepted by ClusterConfig / the CLI.
TRANSPORTS = ("inprocess", "process", "shm")


@dataclass(frozen=True)
class PartitionReply:
    """One partition's answer to a submitted batch (or its loss).

    ``lost`` is True when the partition could not process the batch at all
    — every replica down (in-process) or the worker process dead
    (cross-process).  ``grouped`` is ``None`` exactly when ``lost``.
    """

    partition_id: int
    grouped: list[RecommendationBatch] | None
    latency: float
    lost: bool = False


@dataclass(frozen=True)
class EventReply:
    """One partition's answer to a single submitted event."""

    partition_id: int
    recommendations: list[Recommendation] | None
    latency: float
    lost: bool = False


@dataclass(frozen=True)
class ReplicaHealthSnapshot:
    """One replica's vital signs, as reported over the transport."""

    name: str
    available: bool
    events_processed: int
    missed_events: int
    dynamic_edges: int
    dynamic_memory_bytes: int
    static_memory_bytes: int
    channel_failures: int


@dataclass(frozen=True)
class PartitionHealthSnapshot:
    """One partition's health: worker liveness, backlog, replica signs.

    ``worker_alive`` is always True for the in-process transport;
    ``backlog`` is the partition's pending request-queue depth (0 when the
    transport is synchronous).  ``replicas`` is empty when the worker is
    dead — there is nobody left to ask.
    """

    partition_id: int
    worker_alive: bool
    backlog: int
    replicas: tuple[ReplicaHealthSnapshot, ...]


@runtime_checkable
class PartitionTransport(Protocol):
    """What a broker needs from its partition fleet.

    Submit and gather are split so fan-out can be asynchronous: a
    ``submit_batch`` enqueues work on *every* partition before any result
    is awaited, and each ``gather_batch`` returns one
    :class:`PartitionReply` per partition for the oldest outstanding
    submit (FIFO).  Control messages (health, prune, audience reads)
    require no batches outstanding.
    """

    @property
    def num_partitions(self) -> int:
        """Partition count behind this transport."""
        ...

    @property
    def local_replica_sets(self) -> "list[ReplicaSet] | None":
        """The replica sets when they live in this process, else None."""
        ...

    def submit_batch(self, batch: EventBatch, now: float | None = None) -> None:
        """Fan a columnar micro-batch out to every partition."""
        ...

    def gather_batch(self) -> list[PartitionReply]:
        """Collect every partition's reply for the oldest submitted batch."""
        ...

    def submit_event(self, event: EdgeEvent, now: float | None = None) -> None:
        """Fan a single event out to every partition (per-event lane)."""
        ...

    def gather_event(self) -> list[EventReply]:
        """Collect every partition's reply for the oldest submitted event."""
        ...

    def query_audience(
        self, target: int, now: float
    ) -> list[tuple[list[int], float]]:
        """Read-only audience query on every *reachable* partition."""
        ...

    def health(self) -> list[PartitionHealthSnapshot]:
        """Per-partition health control message."""
        ...

    def prune(self, now: float) -> int:
        """Evict expired D entries on every replica; total removed."""
        ...

    def checkpoint(self) -> "dict[str, np.ndarray] | None":
        """One reachable replica's complete D as checkpoint arrays.

        Every replica holds the full D (the paper's replication design),
        so any available copy is the fleet's.  None when no replica is
        reachable.
        """
        ...

    def load_dynamic(self, arrays: "dict[str, np.ndarray]") -> int:
        """Restore checkpoint arrays into every replica's D; edge count."""
        ...

    def reload_static(
        self, shards: "dict[int, StaticFollowerIndex]"
    ) -> int:
        """Hot-swap per-partition S shards in place; partitions reloaded."""
        ...

    def backlog(self) -> int:
        """Pending submitted-but-ungathered events across partitions."""
        ...

    def close(self) -> None:
        """Release transport resources (idempotent)."""
        ...


def _replica_set_health(
    replica_set: "ReplicaSet",
) -> tuple[ReplicaHealthSnapshot, ...]:
    """Collect one replica set's health (runs wherever the replicas live)."""
    out = []
    for i, (replica, channel) in enumerate(
        zip(replica_set.replicas, replica_set.channels)
    ):
        memory = replica.memory_bytes()
        out.append(
            ReplicaHealthSnapshot(
                name=replica.name,
                available=channel.available,
                events_processed=replica.events_processed(),
                missed_events=replica_set.missed_events[i],
                dynamic_edges=replica.engine.dynamic_index.num_edges,
                dynamic_memory_bytes=memory["dynamic_index"],
                static_memory_bytes=memory["static_index"],
                channel_failures=channel.stats.failures,
            )
        )
    return tuple(out)


class InProcessTransport:
    """The direct-call transport: partitions live in this process.

    ``submit_*`` executes the work synchronously (there is no concurrency
    to exploit in one interpreter) and parks the replies; ``gather_*``
    hands them back FIFO, so the submit/gather protocol — including
    pipelined submits — behaves identically to the worker transport, just
    without the parallelism.  Virtual latency keeps coming from each
    replica's :class:`~repro.cluster.rpc.SimulatedChannel`.
    """

    def __init__(self, replica_sets: "list[ReplicaSet]") -> None:
        require(
            len(replica_sets) >= 1, "a transport needs at least one partition"
        )
        self.replica_sets = list(replica_sets)
        self._pending_batches: deque[list[PartitionReply]] = deque()
        self._pending_events: deque[list[EventReply]] = deque()

    @property
    def num_partitions(self) -> int:
        return len(self.replica_sets)

    @property
    def local_replica_sets(self) -> "list[ReplicaSet]":
        return self.replica_sets

    # ------------------------------------------------------------------
    # Batch lane
    # ------------------------------------------------------------------

    def submit_batch(self, batch: EventBatch, now: float | None = None) -> None:
        from repro.cluster.replica import AllReplicasDown

        replies: list[PartitionReply] = []
        for replica_set in self.replica_sets:
            try:
                grouped, latency = replica_set.ingest_batch(batch, now)
            except AllReplicasDown:
                replies.append(
                    PartitionReply(replica_set.partition_id, None, 0.0, lost=True)
                )
                continue
            replies.append(
                PartitionReply(replica_set.partition_id, grouped, latency)
            )
        self._pending_batches.append(replies)

    def gather_batch(self) -> list[PartitionReply]:
        require(len(self._pending_batches) > 0, "gather without a submit")
        return self._pending_batches.popleft()

    # ------------------------------------------------------------------
    # Per-event lane
    # ------------------------------------------------------------------

    def submit_event(self, event: EdgeEvent, now: float | None = None) -> None:
        from repro.cluster.replica import AllReplicasDown

        replies: list[EventReply] = []
        for replica_set in self.replica_sets:
            try:
                local, latency = replica_set.ingest(event, now)
            except AllReplicasDown:
                replies.append(
                    EventReply(replica_set.partition_id, None, 0.0, lost=True)
                )
                continue
            replies.append(EventReply(replica_set.partition_id, local, latency))
        self._pending_events.append(replies)

    def gather_event(self) -> list[EventReply]:
        require(len(self._pending_events) > 0, "gather without a submit")
        return self._pending_events.popleft()

    # ------------------------------------------------------------------
    # Control messages
    # ------------------------------------------------------------------

    def query_audience(
        self, target: int, now: float
    ) -> list[tuple[list[int], float]]:
        from repro.cluster.replica import AllReplicasDown

        out: list[tuple[list[int], float]] = []
        for replica_set in self.replica_sets:
            try:
                out.append(replica_set.query_audience(target, now))
            except AllReplicasDown:
                continue
        return out

    def health(self) -> list[PartitionHealthSnapshot]:
        return [
            PartitionHealthSnapshot(
                partition_id=replica_set.partition_id,
                worker_alive=True,
                backlog=0,
                replicas=_replica_set_health(replica_set),
            )
            for replica_set in self.replica_sets
        ]

    def prune(self, now: float) -> int:
        removed = 0
        for replica_set in self.replica_sets:
            for replica in replica_set.replicas:
                removed += replica.prune(now)
        return removed

    def checkpoint(self) -> "dict | None":
        for replica_set in self.replica_sets:
            for replica, channel in zip(
                replica_set.replicas, replica_set.channels
            ):
                if channel.available:
                    return dynamic_index_arrays(replica.engine.dynamic_index)
        return None

    def load_dynamic(self, arrays: dict) -> int:
        edges = 0
        for replica_set in self.replica_sets:
            for replica in replica_set.replicas:
                edges = restore_dynamic_arrays(
                    replica.engine.dynamic_index, arrays
                )
        return edges

    def reload_static(self, shards: dict) -> int:
        reloaded = 0
        for replica_set in self.replica_sets:
            shard = shards.get(replica_set.partition_id)
            if shard is None:
                continue
            for replica in replica_set.replicas:
                replica.reload_static(shard)
            reloaded += 1
        return reloaded

    def backlog(self) -> int:
        # Submitted-but-ungathered replies: the synchronous analogue of
        # the worker transports' request-queue depth, so backlog-driven
        # control behaves uniformly across all three transports.
        return len(self._pending_batches) + len(self._pending_events)

    def close(self) -> None:  # nothing to release
        return None


# ----------------------------------------------------------------------
# Worker-process transport
# ----------------------------------------------------------------------


def _control_reply(replica_set, message: tuple) -> tuple | None:
    """One non-batch message's reply tuple, or None for a stop message.

    Shared by the queue and shm worker loops — control semantics must
    not fork between wires.
    """
    from repro.cluster.replica import AllReplicasDown

    kind = message[0]
    if kind == "event":
        try:
            local, latency = replica_set.ingest(message[1], message[2])
        except AllReplicasDown:
            return ("lost", None, 0.0)
        return ("ok", local, latency)
    if kind == "audience":
        try:
            audience, latency = replica_set.query_audience(
                message[1], message[2]
            )
        except AllReplicasDown:
            return ("lost", None, 0.0)
        return ("ok", audience, latency)
    if kind == "health":
        return ("ok", _replica_set_health(replica_set), 0.0)
    if kind == "prune":
        removed = sum(
            replica.prune(message[1]) for replica in replica_set.replicas
        )
        return ("ok", removed, 0.0)
    if kind == "checkpoint":
        # Every replica holds the complete D, so any available one's copy
        # is the fleet's (the durability tier's snapshot capture).
        for replica, channel in zip(
            replica_set.replicas, replica_set.channels
        ):
            if channel.available:
                return (
                    "ok",
                    dynamic_index_arrays(replica.engine.dynamic_index),
                    0.0,
                )
        return ("lost", None, 0.0)
    if kind == "load_dynamic":
        edges = 0
        for replica in replica_set.replicas:
            edges = restore_dynamic_arrays(
                replica.engine.dynamic_index, message[1]
            )
        return ("ok", edges, 0.0)
    if kind == "reload_static":
        # In-place S hot reload: the replica swaps its shard reference
        # atomically; D and in-flight detection state are untouched.
        for replica in replica_set.replicas:
            replica.reload_static(message[1])
        return ("ok", len(replica_set.replicas), 0.0)
    return None  # stop


def _partition_worker_main(replica_set, requests, replies) -> None:
    """One partition worker: drain requests until a stop message.

    Batches arrive and leave in the columnar wire format; control
    messages are tiny tuples.  Any unexpected exception kills the worker
    — the parent detects the death at gather time and marks the
    partition's events lost, exactly like a crashed machine.
    """
    from repro.cluster.replica import AllReplicasDown

    while True:
        message = requests.get()
        if message[0] == "batch":
            batch = decode_event_batch(message[1])
            try:
                grouped, latency = replica_set.ingest_batch(batch, message[2])
            except AllReplicasDown:
                replies.put(("lost", None, 0.0))
                continue
            replies.put(("ok", encode_grouped(grouped), latency))
            continue
        reply = _control_reply(replica_set, message)
        if reply is None:
            replies.put(("ok", None, 0.0))
            return
        replies.put(reply)


def _shm_partition_worker_main(state, requests, replies) -> None:
    """One shm partition worker: frames in, frames out.

    Requests decode as **zero-copy views of the request slot** — safe
    because every index copies on insert and the detector emits fresh
    arrays, so nothing retains the slab bytes past ``ingest_batch`` —
    and the slot is released immediately after.  Replies encode straight
    into a reply slot; a reply too large for the slot travels the pickle
    wire behind a ``FRAME_PICKLE`` marker instead.  The same marker
    carries control messages and request batches that overflowed their
    slot parent-side.  A ``None`` from a ring wait means the parent
    died: exit quietly (daemon semantics).
    """
    from repro.cluster.replica import AllReplicasDown

    replica_set, spec = state
    wire = RingPair.attach(spec)
    parent_alive = multiprocessing.parent_process().is_alive

    def ingest(batch, now):
        try:
            return replica_set.ingest_batch(batch, now)
        except AllReplicasDown:
            return None, 0.0

    def reply_grouped(grouped, latency) -> bool:
        """Frame one batch reply into the reply ring; False = parent died.

        Slab views stay local to this frame, so nothing pins the mmap
        once it returns.
        """
        reply_mem = wire.reply.acquire_slot(is_peer_alive=parent_alive)
        if reply_mem is None:
            return False
        if grouped is None:
            wire.reply.commit_slot(write_frame(reply_mem, FRAME_LOST))
            return True
        payload = encode_grouped(grouped)
        nbytes = frame_grouped(reply_mem, payload, latency)
        if nbytes is None:  # slot overflow: pickle fallback
            replies.put(("ok", payload, latency))
            nbytes = write_frame(reply_mem, FRAME_PICKLE)
        wire.reply.commit_slot(nbytes)
        return True

    try:
        while True:
            mem = wire.request.acquire_frame(is_peer_alive=parent_alive)
            if mem is None:
                return
            kind, cols, _blobs, now, _latency, _aux = read_frame(mem)
            if kind == FRAME_EVENT_BATCH:
                batch = event_batch_from_frame(cols)
                grouped, latency = ingest(batch, now)
                del batch, cols, mem  # no slab views may survive release
                wire.request.release_frame()
                if not reply_grouped(grouped, latency):
                    return
                continue
            # FRAME_PICKLE marker: the actual message is on the queue.
            del cols, mem
            wire.request.release_frame()
            message = poll_queue(requests, parent_alive)
            if message is None:
                return
            if message[0] == "batch":  # request-side slot overflow
                grouped, latency = ingest(
                    decode_event_batch(message[1]), message[2]
                )
                if not reply_grouped(grouped, latency):
                    return
                continue
            reply = _control_reply(replica_set, message)
            if reply is None:
                return  # stop: exit without a reply (close never gathers)
            replies.put(reply)
            reply_mem = wire.reply.acquire_slot(is_peer_alive=parent_alive)
            if reply_mem is None:
                return
            wire.reply.commit_slot(write_frame(reply_mem, FRAME_PICKLE))
            del reply_mem
    finally:
        wire.close()


class WorkerProcessTransport:
    """Partition servers hosted in ``multiprocessing`` workers.

    One worker per partition, each owning its replica set (S shard +
    private D copies) and a request/reply queue pair.  The parent never
    touches the replica sets after startup — its references (under the
    ``fork`` start method) are stale copies; all state lives behind the
    queues.

    Fan-out/gather is asynchronous and pipelined: ``submit_batch`` puts
    the (already encoded, shared) payload on every live worker's request
    queue and returns; any number of submits may be outstanding, and each
    ``gather_batch`` resolves the oldest one.  Replies per worker are FIFO
    because each worker is serial, so no sequence numbers are needed.

    Failure semantics: a dead worker's outstanding and future batches are
    reported ``lost`` (the broker counts the events); the transport keeps
    serving healthy partitions.  Control messages require no outstanding
    batches (they share the reply queues).
    """

    def __init__(
        self,
        replica_sets: "list[ReplicaSet]",
        start_method: str | None = None,
    ) -> None:
        require(
            len(replica_sets) >= 1, "a transport needs at least one partition"
        )
        context = multiprocessing.get_context(
            start_method or default_start_method()
        )
        self._workers: list[WorkerHandle] = []
        self._closed = False
        #: FIFO of outstanding submits: one {partition_id -> submitted} plus
        #: the batch kind, matched positionally by the gathers.
        self._outstanding: deque[tuple[str, dict[int, bool]]] = deque()
        self._spawn_workers(context, replica_sets)

    def _spawn_workers(self, context, replica_sets: "list[ReplicaSet]") -> None:
        for replica_set in replica_sets:
            # spawn_worker hands the replica set over in a one-shot holder
            # the parent clears right after start(): holding P full D
            # copies in the broker process would double the fleet's memory.
            self._workers.append(
                spawn_worker(
                    context,
                    replica_set.partition_id,
                    _partition_worker_main,
                    replica_set,
                    name=f"repro-partition-{replica_set.partition_id}",
                )
            )

    @property
    def num_partitions(self) -> int:
        return len(self._workers)

    @property
    def local_replica_sets(self) -> None:
        """The replica sets live in the workers, not this process."""
        return None

    # ------------------------------------------------------------------
    # Submit / gather plumbing
    # ------------------------------------------------------------------

    def _submit(self, kind: str, message: tuple) -> None:
        require(not self._closed, "transport is closed")
        submitted: dict[int, bool] = {}
        for worker in self._workers:
            if worker.dead or not worker.process.is_alive():
                worker.dead = True
                submitted[worker.key] = False
                continue
            submitted[worker.key] = self._post(worker, message)
        self._outstanding.append((kind, submitted))

    def _submit_each(self, kind: str, messages: dict[int, tuple]) -> None:
        """Fan out *per-partition* payloads (unlike :meth:`_submit`,
        which sends one identical message to every worker).

        Workers absent from *messages* are skipped — their gather slot
        reports None, same as a dead worker's.
        """
        require(not self._closed, "transport is closed")
        submitted: dict[int, bool] = {}
        for worker in self._workers:
            message = messages.get(worker.key)
            if message is None:
                submitted[worker.key] = False
                continue
            if worker.dead or not worker.process.is_alive():
                worker.dead = True
                submitted[worker.key] = False
                continue
            submitted[worker.key] = self._post(worker, message)
        self._outstanding.append((kind, submitted))

    def _post(self, worker: WorkerHandle, message: tuple) -> bool:
        """Deliver one message to a live worker; False if it died instead."""
        worker.requests.put(message)
        return True

    def _gather(self, kind: str) -> list[tuple[int, tuple | None]]:
        require(len(self._outstanding) > 0, "gather without a submit")
        expected_kind, submitted = self._outstanding.popleft()
        require(
            expected_kind == kind,
            f"gather kind mismatch: expected {expected_kind}, got {kind}",
        )
        out: list[tuple[int, tuple | None]] = []
        for worker in self._workers:
            if not submitted.get(worker.key, False):
                out.append((worker.key, None))
                continue
            out.append((worker.key, self._receive(worker, kind)))
        return out

    def _receive(self, worker: WorkerHandle, kind: str) -> tuple | None:
        """One reply tuple from *worker*, or None once it is known dead."""
        return receive_reply(worker)

    # ------------------------------------------------------------------
    # Batch lane
    # ------------------------------------------------------------------

    def submit_batch(self, batch: EventBatch, now: float | None = None) -> None:
        # Encode once; the queue pickles the same arrays per worker.
        self._submit("batch", ("batch", encode_event_batch(batch), now))

    def gather_batch(self) -> list[PartitionReply]:
        replies: list[PartitionReply] = []
        for partition_id, raw in self._gather("batch"):
            if raw is None or raw[0] == "lost":
                replies.append(PartitionReply(partition_id, None, 0.0, lost=True))
                continue
            replies.append(
                PartitionReply(partition_id, decode_grouped(raw[1]), raw[2])
            )
        return replies

    # ------------------------------------------------------------------
    # Per-event lane
    # ------------------------------------------------------------------

    def submit_event(self, event: EdgeEvent, now: float | None = None) -> None:
        self._submit("event", ("event", event, now))

    def gather_event(self) -> list[EventReply]:
        replies: list[EventReply] = []
        for partition_id, raw in self._gather("event"):
            if raw is None or raw[0] == "lost":
                replies.append(EventReply(partition_id, None, 0.0, lost=True))
                continue
            replies.append(EventReply(partition_id, raw[1], raw[2]))
        return replies

    # ------------------------------------------------------------------
    # Control messages
    # ------------------------------------------------------------------

    def _control(self, message: tuple) -> list[tuple[int, tuple | None]]:
        require(
            len(self._outstanding) == 0,
            "control messages require no outstanding batches",
        )
        self._submit(message[0], message)
        return self._gather(message[0])

    def query_audience(
        self, target: int, now: float
    ) -> list[tuple[list[int], float]]:
        out: list[tuple[list[int], float]] = []
        for _partition_id, raw in self._control(("audience", target, now)):
            if raw is None or raw[0] == "lost":
                continue
            out.append((raw[1], raw[2]))
        return out

    def health(self) -> list[PartitionHealthSnapshot]:
        backlogs = {
            worker.key: self._queue_depth(worker)
            for worker in self._workers
        }
        out: list[PartitionHealthSnapshot] = []
        for partition_id, raw in self._control(("health",)):
            alive = raw is not None
            out.append(
                PartitionHealthSnapshot(
                    partition_id=partition_id,
                    worker_alive=alive,
                    backlog=backlogs.get(partition_id, 0),
                    replicas=raw[1] if alive else (),
                )
            )
        return out

    def prune(self, now: float) -> int:
        removed = 0
        for _partition_id, raw in self._control(("prune", now)):
            if raw is not None:
                removed += raw[1]
        return removed

    def checkpoint(self) -> "dict | None":
        """One live worker's complete D (every partition holds it all).

        Routed to a single worker via :meth:`_submit_each` — fanning the
        capture to the whole fleet would serialize P identical copies of
        D over the wire for no information gain.
        """
        require(
            len(self._outstanding) == 0,
            "control messages require no outstanding batches",
        )
        target = next(
            (
                worker.key
                for worker in self._workers
                if not worker.dead and worker.process.is_alive()
            ),
            None,
        )
        if target is None:
            return None
        self._submit_each("checkpoint", {target: ("checkpoint",)})
        for _partition_id, raw in self._gather("checkpoint"):
            if raw is not None and raw[0] == "ok":
                return raw[1]
        return None

    def load_dynamic(self, arrays: dict) -> int:
        edges = 0
        for _partition_id, raw in self._control(("load_dynamic", arrays)):
            if raw is not None and raw[0] == "ok":
                # Every partition restores the same full D copy; any
                # single reply carries the fleet-wide edge count.
                edges = max(edges, raw[1])
        return edges

    def reload_static(self, shards: dict) -> int:
        require(
            len(self._outstanding) == 0,
            "control messages require no outstanding batches",
        )
        self._submit_each(
            "reload_static",
            {
                partition_id: ("reload_static", shard)
                for partition_id, shard in shards.items()
            },
        )
        reloaded = 0
        for _partition_id, raw in self._gather("reload_static"):
            if raw is not None and raw[0] == "ok":
                reloaded += 1
        return reloaded

    def _queue_depth(self, worker: WorkerHandle) -> int:
        try:
            return worker.requests.qsize()
        except NotImplementedError:  # macOS: qsize unsupported
            return 0

    def backlog(self) -> int:
        """Pending request-queue depth summed across live workers."""
        return sum(
            self._queue_depth(worker)
            for worker in self._workers
            if not worker.dead
        )

    @property
    def pending_gathers(self) -> int:
        """Outstanding submitted-but-ungathered requests (pipelining depth)."""
        return len(self._outstanding)

    def workers_alive(self) -> int:
        """Workers still running (dead ones stay dead until close)."""
        return sum(
            1
            for worker in self._workers
            if not worker.dead and worker.process.is_alive()
        )

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Stop, join, and reap every worker (idempotent).

        Graceful path first (a stop message each, bounded join), then
        terminate stragglers so a wedged worker can never hang the parent.
        """
        if self._closed:
            return
        self._closed = True
        stop_workers(self._workers)

    def __del__(self) -> None:  # best-effort backstop; close() is the API
        try:
            self.close()
        except Exception:
            pass


# ----------------------------------------------------------------------
# Shared-memory transport
# ----------------------------------------------------------------------


class SharedMemoryTransport(WorkerProcessTransport):
    """Worker-process partitions fed over shared-memory ring buffers.

    Same fleet, protocol, and failure semantics as
    :class:`WorkerProcessTransport`; only the wire differs.  Event
    batches are written once, as flat columns, into each worker's
    request ring (:mod:`repro.cluster.shm`) and decoded in the worker as
    zero-copy views of the very same bytes; grouped replies come back
    the same way.  Control messages — and any frame that overflows a
    ring slot — fall back to the pickle wire, announced by an in-ring
    marker so the ring remains the sole ordering channel.

    Pipelining is *bounded by the ring capacity*: at most ``slots``
    submits may be outstanding (deeper stacking would block the parent
    on a full request ring while the worker blocks on a full reply ring
    — a deadlock).  The default of 8 slots comfortably covers the
    pipeline depths the driver uses; configure more for deeper stacks.

    Every segment is created (owned) by the parent: ``close()`` unlinks
    them all — including the slabs of workers that died mid-batch — and
    the module's atexit sweep reclaims them even if the parent itself
    crashes before closing.
    """

    def __init__(
        self,
        replica_sets: "list[ReplicaSet]",
        start_method: str | None = None,
        slots: int = DEFAULT_SLOTS,
        slot_bytes: int = DEFAULT_SLOT_BYTES,
    ) -> None:
        require(
            shm_available(),
            "shared memory is unavailable on this host (no /dev/shm?); "
            "use transport='process' instead",
        )
        self._slots = slots
        self._slot_bytes = slot_bytes
        self._segment_names: list[str] = []
        super().__init__(replica_sets, start_method)

    def _spawn_workers(self, context, replica_sets: "list[ReplicaSet]") -> None:
        for replica_set in replica_sets:
            wire = RingPair.create(self._slots, self._slot_bytes)
            self._segment_names += [wire.request.name, wire.reply.name]
            try:
                worker = spawn_worker(
                    context,
                    replica_set.partition_id,
                    _shm_partition_worker_main,
                    (replica_set, wire.spec),
                    name=f"repro-partition-{replica_set.partition_id}",
                )
            except Exception:
                wire.destroy()
                raise
            worker.wire = wire
            self._workers.append(worker)

    # ------------------------------------------------------------------
    # Wire hooks
    # ------------------------------------------------------------------

    def _submit(self, kind: str, message: tuple) -> None:
        require(
            len(self._outstanding) < self._slots,
            f"shm transport pipelining is bounded by its ring capacity "
            f"({self._slots} slots); gather before submitting deeper, or "
            f"configure more slots",
        )
        super()._submit(kind, message)

    def _post(self, worker: WorkerHandle, message: tuple) -> bool:
        wire = worker.wire
        mem = wire.request.acquire_slot(is_peer_alive=worker.process.is_alive)
        if mem is None:
            worker.dead = True
            return False
        if message[0] == "batch":
            nbytes = frame_event_batch(mem, message[1], message[2])
            if nbytes is not None:
                wire.request.commit_slot(nbytes)
                wire.frames_shm += 1
                return True
            wire.frames_fallback += 1  # batch too large for a slot
        else:
            wire.control_pickle += 1
        # Pickle lane: queue payload first, then the ring marker, so a
        # consumed marker's payload is guaranteed to be in flight.
        worker.requests.put(message)
        wire.request.commit_slot(write_frame(mem, FRAME_PICKLE))
        return True

    def _receive(self, worker: WorkerHandle, kind: str) -> tuple | None:
        wire = worker.wire
        try:
            mem = wire.reply.acquire_frame(
                is_peer_alive=worker.process.is_alive
            )
        except TornFrameError:  # died mid-commit: the frame is garbage
            worker.dead = True
            return None
        if mem is None:
            worker.dead = True
            return None
        frame_kind, cols, blobs, _now, latency, _aux = read_frame(
            mem, copy=True
        )
        wire.reply.release_frame()
        if frame_kind == FRAME_PICKLE:
            if kind == "batch":  # reply-side slot overflow
                wire.frames_fallback += 1
            return receive_reply(worker)
        if frame_kind == FRAME_LOST:
            return ("lost", None, 0.0)
        wire.frames_shm += 1
        return ("ok", grouped_payload_from_frame(cols, blobs), latency)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def _queue_depth(self, worker: WorkerHandle) -> int:
        if self._closed or worker.dead:
            return 0
        return worker.wire.request.occupancy()

    def wire_stats(self) -> dict[str, float]:
        """Wire telemetry: frame/fallback counters and slab occupancy.

        ``fallback_rate`` is the fraction of *batch* payloads (either
        direction) that overflowed a ring slot and took the pickle wire
        — the knob to watch when sizing ``slot_bytes``.  Control
        messages always take the pickle wire and are counted separately.
        """
        frames = sum(w.wire.frames_shm for w in self._workers)
        fallbacks = sum(w.wire.frames_fallback for w in self._workers)
        control = sum(w.wire.control_pickle for w in self._workers)
        total = frames + fallbacks
        occupancy = 0
        if not self._closed:
            occupancy = sum(
                w.wire.request.occupancy() + w.wire.reply.occupancy()
                for w in self._workers
                if not w.dead
            )
        return {
            "frames_shm": float(frames),
            "frames_fallback": float(fallbacks),
            "control_pickle": float(control),
            "fallback_rate": (fallbacks / total) if total else 0.0,
            "slab_slots": float(2 * self._slots * len(self._workers)),
            "slab_occupancy": float(occupancy),
        }

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Stop workers, then reclaim every owned segment (idempotent).

        ``stop_workers`` destroys each worker's rings after its join —
        dead workers included — and the explicit sweep is the backstop
        for segments whose worker never spawned.
        """
        if self._closed:
            return
        super().close()
        sweep_segments(self._segment_names)
