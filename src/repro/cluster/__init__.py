"""The distributed serving architecture of §2.

"To distribute this design over multiple machines, we partition by the A's.
... Such a design guarantees that all adjacency list intersections are local
to each partition, which eliminates complex cross-partition operations at
scale.  Note that we can replicate the partitions for both fault tolerance
and increased query throughput.  The final design is a fairly standard
partitioned, replicated architecture with coordination handled by brokers
that fan-out queries and gather results."

Mapping to modules:

* :mod:`~repro.cluster.partitioner` — stable hash partitioning of the A's;
* :mod:`~repro.cluster.partition` — one partition server: an S shard, a
  *full* copy of D (every partition consumes the entire stream), and the
  detector programs;
* :mod:`~repro.cluster.replica` — replica sets with primary reads,
  failover, and resync after recovery;
* :mod:`~repro.cluster.broker` — fan-out / gather over all partitions;
* :mod:`~repro.cluster.transport` — the pluggable broker-to-partition
  call path: direct in-process calls (default), one multiprocessing
  worker per partition fed over columnar queues, or the same workers fed
  over zero-copy shared-memory ring buffers;
* :mod:`~repro.cluster.shm` — the shared-memory slabs and ring protocol
  behind the ``shm`` transport;
* :mod:`~repro.cluster.rpc` — a simulated call layer that accounts virtual
  network latency and injected failures without sleeping;
* :mod:`~repro.cluster.cluster` — assembly of the whole stack from an
  offline snapshot.
"""

from repro.cluster.partitioner import HashPartitioner, ModuloPartitioner, Partitioner
from repro.cluster.rpc import RpcError, RpcStats, SimulatedChannel
from repro.cluster.partition import PartitionServer
from repro.cluster.replica import AllReplicasDown, ReplicaSet
from repro.cluster.shm import ShmRing, TornFrameError, shm_available
from repro.cluster.transport import (
    TRANSPORTS,
    InProcessTransport,
    PartitionHealthSnapshot,
    PartitionReply,
    PartitionTransport,
    ReplicaHealthSnapshot,
    SharedMemoryTransport,
    WorkerProcessTransport,
)
from repro.cluster.broker import Broker, BrokerStats
from repro.cluster.cluster import Cluster, ClusterConfig

__all__ = [
    "Partitioner",
    "HashPartitioner",
    "ModuloPartitioner",
    "RpcError",
    "RpcStats",
    "SimulatedChannel",
    "PartitionServer",
    "AllReplicasDown",
    "ReplicaSet",
    "TRANSPORTS",
    "PartitionTransport",
    "PartitionReply",
    "PartitionHealthSnapshot",
    "ReplicaHealthSnapshot",
    "InProcessTransport",
    "WorkerProcessTransport",
    "SharedMemoryTransport",
    "ShmRing",
    "TornFrameError",
    "shm_available",
    "Broker",
    "BrokerStats",
    "Cluster",
    "ClusterConfig",
]
