"""Replica sets: fault tolerance and read throughput for one partition.

"Note that we can replicate the partitions for both fault tolerance and
increased query throughput."  All replicas consume the full event stream
(keeping their private D copies identical); detection output is taken from
the primary (lowest-index healthy replica) so one motif never produces
duplicate notifications; read-only queries round-robin across healthy
replicas, which is where the read-throughput scaling comes from.

A replica that was down has missed stream events, so its D is stale;
:meth:`ReplicaSet.resync` copies a healthy sibling's D state before the
replica rejoins, mirroring how production systems bootstrap a replacement
from a snapshot plus stream catch-up.
"""

from __future__ import annotations

from repro.cluster.partition import PartitionServer
from repro.cluster.rpc import RpcError, SimulatedChannel
from repro.core.batch import EventBatch
from repro.core.events import EdgeEvent
from repro.core.recommendation import (
    EMPTY_RECOMMENDATION_BATCH,
    Recommendation,
    RecommendationBatch,
)
from repro.util.validation import require


class AllReplicasDown(RuntimeError):
    """Every replica of a partition is unavailable."""


class ReplicaSet:
    """All replicas of one partition behind a tiny routing layer."""

    def __init__(
        self,
        partition_id: int,
        replicas: list[PartitionServer],
        channels: list[SimulatedChannel] | None = None,
    ) -> None:
        """Create a replica set.

        Args:
            partition_id: the partition these replicas serve.
            replicas: at least one :class:`PartitionServer`.
            channels: one simulated channel per replica (defaults to
                zero-latency, always-up channels).
        """
        require(len(replicas) >= 1, "a replica set needs at least one replica")
        self.partition_id = partition_id
        self.replicas = list(replicas)
        if channels is None:
            channels = [
                SimulatedChannel(f"p{partition_id}/r{i}")
                for i in range(len(replicas))
            ]
        require(
            len(channels) == len(replicas),
            "need exactly one channel per replica",
        )
        self.channels = channels
        self._read_cursor = 0
        #: Events each replica missed while down (forces resync to rejoin).
        self.missed_events = [0] * len(replicas)

    # ------------------------------------------------------------------
    # Health management
    # ------------------------------------------------------------------

    def mark_down(self, replica_id: int) -> None:
        """Take one replica out of service."""
        self.channels[replica_id].mark_down()

    def mark_up(self, replica_id: int) -> None:
        """Return a replica to service *without* resync (stale D!).

        Prefer :meth:`resync`, which repairs state before rejoining.
        """
        self.channels[replica_id].mark_up()

    def resync(self, replica_id: int) -> None:
        """Copy a healthy sibling's D state into the replica and rejoin.

        Raises:
            AllReplicasDown: when no healthy source replica exists.
        """
        source = None
        for i, channel in enumerate(self.channels):
            if i != replica_id and channel.available:
                source = self.replicas[i]
                break
        if source is None:
            raise AllReplicasDown(
                f"partition {self.partition_id}: no healthy replica to resync from"
            )
        target = self.replicas[replica_id]
        target.engine.dynamic_index.clone_state_from(source.engine.dynamic_index)
        self.missed_events[replica_id] = 0
        self.channels[replica_id].mark_up()

    def healthy_replicas(self) -> list[int]:
        """Indexes of replicas currently in service."""
        return [i for i, ch in enumerate(self.channels) if ch.available]

    # ------------------------------------------------------------------
    # Serving interface
    # ------------------------------------------------------------------

    def ingest(
        self, event: EdgeEvent, now: float | None = None
    ) -> tuple[list[Recommendation], float]:
        """Deliver the event to every healthy replica.

        Returns the primary's candidates plus the *maximum* virtual channel
        latency (the fan-out completes when the slowest replica acks).

        Raises:
            AllReplicasDown: when no replica accepted the event.
        """
        primary_output: list[Recommendation] | None = None
        worst_latency = 0.0
        delivered = False
        for i, (replica, channel) in enumerate(zip(self.replicas, self.channels)):
            if not channel.available:
                self.missed_events[i] += 1
                continue
            try:
                result = channel.call(replica.ingest, event, now)
            except RpcError:
                # Transient fault: this replica missed the event and now
                # diverges from its siblings until resynced.
                self.missed_events[i] += 1
                continue
            worst_latency = max(worst_latency, result.latency)
            delivered = True
            if primary_output is None:  # lowest-index healthy = primary
                primary_output = result.value
        if not delivered:
            raise AllReplicasDown(
                f"partition {self.partition_id}: event lost, all replicas down"
            )
        return primary_output or [], worst_latency

    def ingest_batch(
        self, batch: EventBatch, now: float | None = None
    ) -> tuple[list[RecommendationBatch], float]:
        """Deliver a columnar micro-batch to every healthy replica.

        One simulated RPC per replica carries the whole batch (pipelined
        delivery — the virtual latency is paid once per batch, not once per
        event).  Returns the primary's per-event candidate batches plus the
        maximum channel latency, mirroring :meth:`ingest`.

        Raises:
            AllReplicasDown: when no replica accepted the batch.
        """
        primary_output: list[RecommendationBatch] | None = None
        worst_latency = 0.0
        delivered = False
        n = len(batch)
        for i, (replica, channel) in enumerate(zip(self.replicas, self.channels)):
            if not channel.available:
                self.missed_events[i] += n
                continue
            try:
                result = channel.call(replica.ingest_batch, batch, now)
            except RpcError:
                # Transient fault: this replica missed the whole batch and
                # now diverges from its siblings until resynced.
                self.missed_events[i] += n
                continue
            worst_latency = max(worst_latency, result.latency)
            delivered = True
            if primary_output is None:  # lowest-index healthy = primary
                primary_output = result.value
        if not delivered:
            raise AllReplicasDown(
                f"partition {self.partition_id}: batch lost, all replicas down"
            )
        if primary_output is None:
            primary_output = [EMPTY_RECOMMENDATION_BATCH] * n
        return primary_output, worst_latency

    def query_audience(self, target: int, now: float) -> tuple[list[int], float]:
        """Round-robin a read across healthy replicas, with failover.

        Returns (audience, virtual latency of the call that served it).
        """
        attempts = 0
        while attempts < len(self.replicas):
            index = self._read_cursor % len(self.replicas)
            self._read_cursor += 1
            channel = self.channels[index]
            attempts += 1
            if not channel.available:
                continue
            try:
                result = channel.call(
                    self.replicas[index].query_audience, target, now
                )
            except RpcError:
                continue
            return result.value, result.latency
        raise AllReplicasDown(
            f"partition {self.partition_id}: no replica served the read"
        )

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def memory_bytes(self) -> dict[str, int]:
        """Summed S and D footprint across replicas (replication cost)."""
        total = {"static_index": 0, "dynamic_index": 0}
        for replica in self.replicas:
            report = replica.memory_bytes()
            total["static_index"] += report["static_index"]
            total["dynamic_index"] += report["dynamic_index"]
        return total
