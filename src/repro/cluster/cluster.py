"""Cluster assembly: snapshot -> partition shards -> replicas -> broker.

``Cluster.build`` performs the offline load step for every partition: it
inverts the snapshot into per-partition S shards (disjoint A's), creates
``replication_factor`` replicas per partition each with a private full D
copy, wires simulated channels, and parks a broker in front.  Production
runs 20 partitions; the partition-scaling benchmark (E5) sweeps this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


from repro.cluster.broker import Broker
from repro.cluster.partition import PartitionServer
from repro.cluster.partitioner import HashPartitioner, Partitioner
from repro.cluster.replica import ReplicaSet
from repro.cluster.rpc import SimulatedChannel
from repro.cluster.transport import (
    TRANSPORTS,
    PartitionTransport,
    SharedMemoryTransport,
    WorkerProcessTransport,
)
from repro.core.batch import EventBatch, iter_event_batches
from repro.core.detector import OnlineDetector
from repro.core.events import EdgeEvent
from repro.core.params import DetectionParams
from repro.core.recommendation import Recommendation
from repro.graph.dynamic_index import DynamicEdgeIndex
from repro.graph.snapshot import GraphSnapshot, build_follower_snapshot
from repro.graph.static_index import StaticFollowerIndex
from repro.util.rng import make_rng
from repro.util.validation import require, require_positive

#: Builds one replica's detector programs from its (S shard, D copy).
DetectorFactory = Callable[
    [StaticFollowerIndex, DynamicEdgeIndex], list[OnlineDetector]
]

#: The production deployment size reported in the paper.
PRODUCTION_PARTITIONS = 20


@dataclass(frozen=True)
class ClusterConfig:
    """Shape of a cluster deployment.

    Attributes:
        num_partitions: S shards (paper production: 20).
        replication_factor: replicas per partition.
        influencer_limit: per-user cap applied during the offline load.
        max_edges_per_target: per-C cap on stored D entries (the paper's
            D-pruning mitigation for viral targets).
        track_latency: make partitions record per-event detection time.
        s_backend: S storage layout per shard — ``"csr"`` (single int64
            arena, default) or ``"packed"``; representation only, results
            are identical.
        d_backend: D storage layout per replica — ``"ring"`` (columnar
            ring buffers for hot targets, default) or ``"list"``.
        transport: how the broker reaches the partitions —
            ``"inprocess"`` (direct calls + simulated channel latency,
            default), ``"process"`` (one multiprocessing worker per
            partition fed over pickled queues), or ``"shm"`` (the same
            workers fed over zero-copy shared-memory ring buffers; needs
            a working ``/dev/shm``).  Worker transports must be closed
            — call :meth:`Cluster.close` when done.
        worker_start_method: multiprocessing start method for the
            worker transports (platform default when ``None``: ``fork``
            where available, else ``spawn``).
        shm_slots: ring slots per direction per worker for the ``"shm"``
            transport (default 8; also bounds the usable pipeline depth).
        shm_slot_bytes: payload bytes per ring slot (default 1 MiB);
            frames that overflow a slot fall back to the pickle wire.
        promote_threshold: per-target D entry count at which the ring
            backend promotes a boxed list to columnar ring storage
            (module default when ``None``).  Deployments derive this from
            the recorded list/ring cost crossover via
            :func:`repro.ops.controller.derive_promote_threshold` instead
            of trusting the hard-coded value.
    """

    num_partitions: int = PRODUCTION_PARTITIONS
    replication_factor: int = 1
    influencer_limit: int | None = None
    max_edges_per_target: int | None = None
    track_latency: bool = False
    s_backend: str = "csr"
    d_backend: str = "ring"
    transport: str = "inprocess"
    worker_start_method: str | None = None
    shm_slots: int = 8
    shm_slot_bytes: int = 1 << 20
    promote_threshold: int | None = None

    def __post_init__(self) -> None:
        require_positive(self.num_partitions, "num_partitions")
        require_positive(self.replication_factor, "replication_factor")
        require_positive(self.shm_slots, "shm_slots")
        require_positive(self.shm_slot_bytes, "shm_slot_bytes")
        if self.promote_threshold is not None:
            require_positive(self.promote_threshold, "promote_threshold")
        require(
            self.transport in TRANSPORTS,
            f"transport must be one of {TRANSPORTS}, got {self.transport!r}",
        )


class Cluster:
    """The full serving stack: broker + replicated partitions."""

    def __init__(
        self,
        broker: Broker,
        partitioner: Partitioner,
        params: DetectionParams,
        config: ClusterConfig | None = None,
    ) -> None:
        """Wrap prebuilt components; prefer :meth:`build`.

        Args:
            config: the deployment shape the components were built with;
                snapshot reloads reuse its storage backends.  Callers
                assembling a cluster by hand around non-default backends
                must pass the matching config or reloads will rebuild
                shards in the default layout.
        """
        self.broker = broker
        self.partitioner = partitioner
        self.params = params
        self.config = config or ClusterConfig()

    @classmethod
    def build(
        cls,
        snapshot: GraphSnapshot,
        params: DetectionParams | None = None,
        config: ClusterConfig | None = None,
        partitioner: Partitioner | None = None,
        channel_factory: Callable[[int, int], SimulatedChannel] | None = None,
        detector_factory: "DetectorFactory | None" = None,
    ) -> "Cluster":
        """Offline-load a cluster from a snapshot.

        Args:
            snapshot: the offline ``A -> B`` follow graph.
            params: detection parameters (production defaults if omitted).
            config: deployment shape (20 partitions x 1 replica default).
            partitioner: A-ownership function (stable hash by default).
            channel_factory: ``(partition_id, replica_id) -> channel`` for
                custom latency/failure models; zero-latency by default.
            detector_factory: builds each replica's motif programs from its
                ``(static_shard, dynamic_index)`` pair — this is how
                declarative motifs (or several co-hosted programs) are
                deployed fleet-wide.  Factories must construct detectors
                with ``inserts_edges=False``; the engine owns the insert.
                Defaults to one hand-coded diamond per replica.
        """
        params = params or DetectionParams()
        config = config or ClusterConfig()
        partitioner = partitioner or HashPartitioner(config.num_partitions)

        replica_sets: list[ReplicaSet] = []
        for p in range(config.num_partitions):
            shard = build_follower_snapshot(
                snapshot,
                influencer_limit=config.influencer_limit,
                include_source=lambda a, p=p: partitioner.partition_of(a) == p,
                backend=config.s_backend,
            )
            replicas: list[PartitionServer] = []
            channels: list[SimulatedChannel] = []
            for r in range(config.replication_factor):
                detectors = None
                # Every replica owns a private full D copy in the
                # configured backend (the paper's D-replication design).
                dynamic_kwargs = {}
                if config.promote_threshold is not None:
                    dynamic_kwargs["promote_threshold"] = config.promote_threshold
                dynamic_index = DynamicEdgeIndex(
                    retention=params.tau,
                    max_edges_per_target=config.max_edges_per_target,
                    backend=config.d_backend,
                    **dynamic_kwargs,
                )
                if detector_factory is not None:
                    detectors = detector_factory(shard, dynamic_index)
                replicas.append(
                    PartitionServer(
                        partition_id=p,
                        replica_id=r,
                        static_shard=shard,
                        params=params,
                        detectors=detectors,
                        dynamic_index=dynamic_index,
                        max_edges_per_target=config.max_edges_per_target,
                        track_latency=config.track_latency,
                    )
                )
                if channel_factory is not None:
                    channels.append(channel_factory(p, r))
                else:
                    channels.append(SimulatedChannel(f"p{p}/r{r}"))
            replica_sets.append(ReplicaSet(p, replicas, channels))
        if config.transport == "shm":
            broker = Broker(
                transport=SharedMemoryTransport(
                    replica_sets,
                    start_method=config.worker_start_method,
                    slots=config.shm_slots,
                    slot_bytes=config.shm_slot_bytes,
                )
            )
        elif config.transport == "process":
            broker = Broker(
                transport=WorkerProcessTransport(
                    replica_sets, start_method=config.worker_start_method
                )
            )
        else:
            broker = Broker(replica_sets)
        return cls(broker, partitioner, params, config)

    # ------------------------------------------------------------------
    # Serving interface
    # ------------------------------------------------------------------

    def process_event(self, event: EdgeEvent) -> list[Recommendation]:
        """Route one live edge through broker and partitions."""
        recommendations, _latency = self.broker.process_event(event)
        return recommendations

    def process_batch(self, batch: EventBatch) -> list[Recommendation]:
        """Route a columnar micro-batch through broker and partitions.

        One fan-out round-trip per partition per batch; emits exactly the
        candidates the per-event loop would, in the same order.
        """
        grouped, _latency = self.broker.process_batch(batch)
        out: list[Recommendation] = []
        for per_event in grouped:
            out.extend(per_event)
        return out

    def process_stream(
        self,
        events: list[EdgeEvent],
        batch_size: int = 1,
        pipeline_depth: int = 1,
    ) -> list[Recommendation]:
        """Route a whole stream; returns all gathered candidates.

        ``batch_size > 1`` routes the stream through the columnar
        :meth:`process_batch` path in chunks of that size.
        ``pipeline_depth > 1`` keeps up to that many batches in flight
        (submit-ahead) before gathering the oldest — a no-op on the
        synchronous in-process transport, and the throughput mode on the
        worker transport, where the parent encodes the next batch while
        workers chew the previous ones.  Output order and content are
        identical at any depth.
        """
        require_positive(batch_size, "batch_size")
        require_positive(pipeline_depth, "pipeline_depth")
        if batch_size > 1:
            out: list[Recommendation] = []
            inflight = 0

            def gather_oldest() -> None:
                grouped, _latency = self.broker.gather_batch()
                for per_event in grouped:
                    out.extend(per_event)

            for batch in iter_event_batches(events, batch_size):
                self.broker.submit_batch(batch)
                inflight += 1
                if inflight >= pipeline_depth:
                    gather_oldest()
                    inflight -= 1
            while inflight:
                gather_oldest()
                inflight -= 1
            return out
        out = []
        for event in events:
            out.extend(self.process_event(event))
        return out

    def query_audience(self, target: int, now: float) -> list[int]:
        """Read-only audience query fanned across all partitions."""
        audience, _latency = self.broker.query_audience(target, now)
        return audience

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    @property
    def transport(self) -> PartitionTransport:
        """The broker-to-partition transport in use."""
        return self.broker.transport

    @property
    def replica_sets(self) -> list[ReplicaSet]:
        """The partitions behind the broker (in-process transports only)."""
        return self.broker.replica_sets

    def close(self) -> None:
        """Release transport resources (joins worker processes).

        Idempotent; a no-op for the in-process transport.  Clusters built
        with ``transport="process"`` must be closed (or used as a context
        manager) so the partition workers are stopped and reaped.
        """
        self.broker.transport.close()

    def __enter__(self) -> "Cluster":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()

    def prune(self, now: float) -> int:
        """Evict expired D entries on every replica (via the transport)."""
        return self.broker.transport.prune(now)

    def reload_snapshot(
        self,
        snapshot: GraphSnapshot,
        influencer_limit: int | None = None,
    ) -> int:
        """Roll a new offline snapshot onto every partition replica.

        The paper: "the A -> B edges are computed offline and loaded into
        the system periodically".  Shards are rebuilt with the same
        partitioner (ownership is stable), then each replica swaps its S
        reference atomically; the event stream keeps flowing throughout
        and D is untouched.  Worker-hosted partitions (process/shm
        transports) receive their shard as a per-partition
        ``reload_static`` control message — the live fleet hot-reloads
        without a restart.  Returns the number of partitions reloaded
        (dead workers are skipped, like any other control message).
        """
        shards = {}
        for p in range(self.broker.transport.num_partitions):
            shards[p] = build_follower_snapshot(
                snapshot,
                influencer_limit=influencer_limit,
                include_source=lambda a, p=p: self.partitioner.partition_of(a) == p,
                backend=self.config.s_backend,
            )
        return self.broker.transport.reload_static(shards)

    def checkpoint_dynamic(self) -> "dict | None":
        """One reachable replica's complete D as checkpoint arrays.

        The durability tier's snapshot capture: every replica holds the
        full D, so any available copy represents the fleet.  None when no
        replica is reachable (snapshot again later).
        """
        return self.broker.transport.checkpoint()

    def load_dynamic(self, arrays: dict) -> int:
        """Restore checkpoint arrays into every replica's D fleet-wide.

        Recovery's warm-start: used together with
        :meth:`reload_snapshot`, it rebuilds a crashed deployment's
        detection state without replaying the full retention window.
        Returns the per-replica edge count restored.
        """
        return self.broker.transport.load_dynamic(arrays)

    def memory_report(self) -> dict[str, int]:
        """Aggregate S and D footprints across the fleet.

        D's total grows with partitions x replicas (full replication, the
        paper's acknowledged bottleneck); S's total stays roughly constant
        because the shards are disjoint.  Collected over the transport's
        health control message, so it works for worker-hosted partitions
        too (dead workers contribute nothing).
        """
        total = {"static_index": 0, "dynamic_index": 0}
        for partition in self.broker.transport.health():
            for replica in partition.replicas:
                total["static_index"] += replica.static_memory_bytes
                total["dynamic_index"] += replica.dynamic_memory_bytes
        return total


def fault_injecting_channel_factory(
    failure_rate: float, seed: int = 0
) -> Callable[[int, int], SimulatedChannel]:
    """Channel factory with i.i.d. injected call failures (for chaos tests)."""
    def factory(partition_id: int, replica_id: int) -> SimulatedChannel:
        return SimulatedChannel(
            f"p{partition_id}/r{replica_id}",
            failure_rate=failure_rate,
            rng=make_rng(seed, "channel", partition_id, replica_id),
        )

    return factory
