"""The full streaming topology: the paper's production path, end to end.

::

    edge created
      -> [firehose queue]      (lognormal hop)
      -> [fan-out queue]       (lognormal hop)
      -> broker + partitions   (measured detection ms + virtual rpc)
      -> [push queue]          (lognormal hop)
      -> delivery coalescer    (merge batches over delivery_max_wait)
      -> delivery funnel       (dedup / waking hours / fatigue)
      -> push notification

Per-notification latency is ``delivered_at - edge.created_at`` in virtual
time; the breakdown separates queue hops from detection so benchmark E4 can
verify the paper's claim that "nearly all the latency comes from event
propagation delays in various message queues".  Both micro-batching knobs
are symmetric: the detection consumer batches *events* (``batch_size`` /
``max_wait``, reported as ``path:batching``) and the delivery coalescer
batches *candidate batches* (``delivery_batch_size`` /
``delivery_max_wait``, reported as ``path:delivery-batching``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.cluster import Cluster
from repro.core.events import EdgeEvent
from repro.delivery.pipeline import DeliveryPipeline
from repro.delivery.notifier import PushNotification
from repro.delivery.scoring import TopKPerUserBuffer
from repro.sim.des import DiscreteEventSimulator
from repro.sim.latency import (
    DelayModel,
    LogNormalDelay,
    PRODUCTION_HOP_MEDIAN,
    PRODUCTION_HOP_SIGMA,
)
from repro.sim.metrics import LatencyBreakdown
from repro.ops.controller import AdaptiveController, ControllerConfig, LoadSignal
from repro.streaming.consumer import (
    CandidateBatch,
    DeliveryCoalescer,
    DetectionConsumer,
)
from repro.serving.frontend import QueryLoadGenerator
from repro.streaming.queue import MessageQueue
from repro.streaming.source import ReplaySource
from repro.util.rng import make_rng
from repro.util.validation import require

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.durability.manager import DurabilityManager
    from repro.serving.cache import ServingCache


class TopologyKnobs:
    """The actuation surface the adaptive controller drives.

    Thin adapter from the controller's three abstract actuations onto the
    live topology components; tests substitute a recorder with the same
    three methods.
    """

    def __init__(
        self,
        consumer: DetectionConsumer,
        coalescer: DeliveryCoalescer,
        admission=None,
    ) -> None:
        self._consumer = consumer
        self._coalescer = coalescer
        self._admission = admission

    def set_detection_knobs(self, batch_size: int, max_wait: float) -> None:
        self._consumer.configure(batch_size=batch_size, max_wait=max_wait)

    def set_delivery_knobs(self, batch_size: int, max_wait: float) -> None:
        self._coalescer.configure(batch_size=batch_size, max_wait=max_wait)

    def set_shedding(self, active: bool) -> None:
        if self._admission is not None:
            self._admission.set_pressure_shed(active)


@dataclass
class TopologyReport:
    """Everything one topology run produced."""

    breakdown: LatencyBreakdown
    notifications: list[PushNotification] = field(default_factory=list)
    events_ingested: int = 0
    candidates_detected: int = 0

    def queue_share(self) -> float:
        """Mean fraction of end-to-end latency spent in queue hops.

        Computed from the exact per-notification decomposition
        (``total = queue hops + detection + rpc``), so the shares sum to 1.
        """
        if "path:queue" not in self.breakdown.stages():
            return 0.0
        return self.breakdown.share_of_total("path:queue")

    def detection_share(self) -> float:
        """Mean fraction of end-to-end latency spent in detection + rpc."""
        if "path:processing" not in self.breakdown.stages():
            return 0.0
        return self.breakdown.share_of_total("path:processing")


class StreamingTopology:
    """Assembles source, queues, cluster consumer, and delivery funnel."""

    def __init__(
        self,
        cluster: Cluster,
        delivery: DeliveryPipeline | None = None,
        hop_models: dict[str, DelayModel] | None = None,
        admission=None,
        seed: int = 0,
        batch_size: int = 1,
        max_wait: float = 0.05,
        delivery_batch_size: int = 1,
        delivery_max_wait: float = 0.05,
        ranked_k: int | None = None,
        controller_config: ControllerConfig | None = None,
        serving: "ServingCache | None" = None,
        serving_mode: str = "parent",
        query_qps: float | None = None,
        query_users: int | None = None,
        query_k: int | None = None,
        durability: "DurabilityManager | None" = None,
        snapshot_interval: float | None = None,
    ) -> None:
        """Build the topology.

        Args:
            cluster: the detection cluster to run in the middle.
            delivery: the notification funnel (production default trio when
                omitted).
            hop_models: delay models per hop name (``firehose``,
                ``fanout``, ``push``); defaults to the calibrated
                production lognormal for each.
            admission: optional
                :class:`~repro.ops.admission.AdmissionController` gating
                the detection consumer (overload shedding).
            seed: randomness for the default delay models.
            batch_size: detection-consumer micro-batch size (1 = per-event).
            max_wait: micro-batch flush deadline in virtual seconds; time
                spent waiting is reported as the ``path:batching`` stage.
            delivery_batch_size: candidate count at which the delivery
                coalescer flushes a merged batch into the funnel
                (1 = dispatch every candidate batch on arrival).
            delivery_max_wait: coalescer flush deadline in virtual
                seconds; time spent waiting is reported as the
                ``path:delivery-batching`` stage.
            ranked_k: enable the ranked delivery configuration — a
                :class:`~repro.delivery.scoring.TopKPerUserBuffer`
                releasing at most this many candidates per user per
                coalescing window into the funnel (``None`` = unranked).
            controller_config: enable the adaptive control plane — an
                :class:`~repro.ops.controller.AdaptiveController` ticking
                every ``interval`` virtual seconds that retunes both
                micro-batching windows from the live backlog signal and
                escalates to admission shedding past the SLO.  The
                controller owns the knobs from construction on, so the
                static ``batch_size``/``max_wait``/``delivery_*`` args
                above only name the initial values it immediately
                replaces with its level-0 posture.  When an SLO is set
                but no ``admission`` controller was passed, a
                non-limiting SAMPLE-policy controller is created so the
                shed rung has an actuator (and keeps a 1-in-N trace
                flowing while shedding).
            serving: enable the pull-side serving tier — a
                :class:`~repro.serving.cache.ServingCache` (or its sharded
                wrapper) fed by the delivery coalescer's flush tap, so
                every flush window's funnel input also materializes into
                the per-user top-k that point queries read.
            serving_mode: ``"parent"`` (default) wires *serving* into
                the coalescer's flush tap — cache writes happen here, in
                the parent.  ``"worker"`` means the delivery pipeline's
                shard workers already own the cache writers (a
                :class:`~repro.delivery.sharded.ShardedDeliveryPipeline`
                built with ``serving=``), so the coalescer must *not*
                write: *serving* is then the read-only attach-by-spec
                surface (``delivery.serving``) that queries, gauges, and
                snapshots consume.
            query_qps: with *serving*, schedule zipf point queries at
                this rate (per virtual second) for the duration of the
                replayed stream — the mixed read/write workload.  Read
                wall-clock latency lands in the ``serving:read``
                breakdown stage.
            query_users: user-id space for the query load (required with
                ``query_qps``).
            query_k: entries requested per query (default: the cache's k).
            durability: enable the durable state tier — a
                :class:`~repro.durability.manager.DurabilityManager`
                whose WAL taps the detection consumer (every batch is
                logged immediately before it enters the cluster) and
                whose snapshots fire from a virtual-time tick.
            snapshot_interval: virtual seconds between snapshot
                attempts (requires *durability*; ``None`` = WAL only,
                no automatic snapshots).  A tick landing while
                candidates are in flight between the consumer and the
                funnel retries shortly after — snapshots are only taken
                at quiescent points so the captured arenas exactly match
                the manifest's WAL high-water mark.
        """
        self.sim = DiscreteEventSimulator()
        self.breakdown = LatencyBreakdown()
        self.delivery = delivery or DeliveryPipeline()
        if hop_models is None:
            hop_models = {
                name: LogNormalDelay(
                    PRODUCTION_HOP_MEDIAN,
                    PRODUCTION_HOP_SIGMA,
                    make_rng(seed, "hop", name),
                )
                for name in ("firehose", "fanout", "push")
            }
        self._hop_models = hop_models

        self.firehose: MessageQueue[EdgeEvent] = MessageQueue(
            self.sim, "firehose", hop_models.get("firehose")
        )
        self.fanout: MessageQueue[EdgeEvent] = MessageQueue(
            self.sim, "fanout", hop_models.get("fanout")
        )
        self.push: MessageQueue[CandidateBatch] = MessageQueue(
            self.sim, "push", hop_models.get("push")
        )
        self.source = ReplaySource(self.sim, self.firehose)
        if (
            controller_config is not None
            and controller_config.slo_p99 is not None
            and admission is None
        ):
            from repro.ops.admission import AdmissionController, AdmissionPolicy

            # Effectively infinite budget: the bucket itself never sheds;
            # only the controller's pressure-shed rung does.
            admission = AdmissionController(
                rate=1e12,
                burst=1e12,
                policy=AdmissionPolicy.SAMPLE,
            )
        self.consumer = DetectionConsumer(
            self.sim,
            cluster,
            self.push,
            self.breakdown,
            admission=admission,
            batch_size=batch_size,
            max_wait=max_wait,
        )
        self._notifications: list[PushNotification] = []
        # Latency is measured per *recommendation delivery* (the paper's
        # "from the edge creation event to the delivery of the
        # recommendation"), before the product filters — dedup would bias
        # the distribution toward the fastest duplicate.  The coalescer
        # owns that accounting (plus the delivery-batching wait, when
        # coalescing is enabled).
        self.coalescer = DeliveryCoalescer(
            self.sim,
            self.delivery,
            self.breakdown,
            self._notifications,
            batch_size=delivery_batch_size,
            max_wait=delivery_max_wait,
            # ranked_k=0 must error (TopKPerUserBuffer validates), not
            # silently fall back to the unranked configuration.
            ranker=(
                TopKPerUserBuffer(k=ranked_k) if ranked_k is not None else None
            ),
            # In worker mode the shard processes are the cache writers
            # (they ingest each batch slice pre-funnel); tapping here too
            # would double-write every row from the parent.
            serving=serving if serving_mode == "parent" else None,
        )
        require(
            serving_mode in ("parent", "worker"),
            f"serving_mode must be 'parent' or 'worker', got {serving_mode!r}",
        )
        self.serving = serving
        self.serving_mode = serving_mode
        self.query_load: QueryLoadGenerator | None = None
        if query_qps is not None:
            require(
                serving is not None,
                "query_qps needs a serving cache to query",
            )
            require(
                query_users is not None and query_users > 0,
                "query_qps needs query_users (the id space to draw from)",
            )
            self.query_load = QueryLoadGenerator(
                self.sim,
                serving,
                query_users,
                query_qps,
                self.breakdown,
                k=query_k,
                seed=seed,
            )

        self.durability = durability
        self._snapshot_interval = snapshot_interval
        if snapshot_interval is not None:
            require(
                durability is not None,
                "snapshot_interval needs a durability manager",
            )
            require(
                snapshot_interval > 0,
                f"snapshot_interval must be positive, got {snapshot_interval}",
            )
        if durability is not None:
            durability.cluster = cluster
            self.consumer.wal_tap = durability.log_batch

        self.admission = admission
        self.controller: AdaptiveController | None = None
        if controller_config is not None:
            self.controller = AdaptiveController(
                TopologyKnobs(self.consumer, self.coalescer, admission),
                config=controller_config,
            )

        # Wire the stages.
        self.firehose.subscribe(self._forward_to_fanout)
        self.fanout.subscribe(self.consumer)
        self.fanout.subscribe(self._record_fanout_delay)
        self.push.subscribe(self.coalescer)

    # ------------------------------------------------------------------
    # Stage glue
    # ------------------------------------------------------------------

    def _forward_to_fanout(
        self, event: EdgeEvent, published_at: float, delivered_at: float
    ) -> None:
        self.breakdown.record("queue:firehose", delivered_at - published_at)
        self.fanout.publish(event)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def run(self, events: list[EdgeEvent]) -> TopologyReport:
        """Replay *events* through the whole path and drain the simulator."""
        self.source.load(events)
        if self.controller is not None:
            self.sim.schedule_after(
                self.controller.config.interval, self._controller_tick
            )
        if self.query_load is not None and events:
            # The query timeline is fixed up front (stream span plus a
            # drain margin covering the trailing flush windows): were the
            # queries self-rescheduling-while-pending like the controller
            # tick, the two event sources would keep each other alive and
            # the drain would never finish.
            horizon = max(event.created_at for event in events) + 1.0
            self.query_load.schedule_until(horizon)
        if self.durability is not None and self._snapshot_interval is not None:
            self.sim.schedule_after(
                self._snapshot_interval, self._snapshot_tick
            )
        self.sim.run()
        if self.durability is not None:
            # Everything ingested is now OS-buffered: the full log
            # survives a SIGKILL landing after the drain.
            self.durability.wal.flush()
        return TopologyReport(
            breakdown=self.breakdown,
            notifications=list(self._notifications),
            events_ingested=self.consumer.events_consumed,
            candidates_detected=self.consumer.candidates_produced,
        )

    def _record_fanout_delay(
        self, event: EdgeEvent, published_at: float, delivered_at: float
    ) -> None:
        self.breakdown.record("queue:fanout", delivered_at - published_at)

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------

    def snapshot_quiescent(self) -> bool:
        """True when every WAL-logged batch has fully reached the funnel.

        Events still upstream of the consumer (queue hops, the
        micro-batch buffer) are *not yet logged*, so they don't block a
        snapshot; candidates between the cluster and the funnel are the
        effects of logged records the arenas haven't absorbed yet, so
        they do.
        """
        return (
            self.consumer.inflight_publishes == 0
            and self.push.in_flight == 0
            and self.coalescer.pending_batches == 0
        )

    def _snapshot_tick(self) -> None:
        assert self.durability is not None
        assert self._snapshot_interval is not None
        delay = self._snapshot_interval
        if self.snapshot_quiescent():
            self.durability.snapshot(
                self.sim.clock.now(),
                delivery=self.delivery,
                notifications=self._notifications,
                serving=self.serving,
            )
        else:
            # In-flight candidates drain within a few virtual
            # milliseconds; retry shortly instead of skipping a whole
            # interval.
            delay = min(delay, 0.05)
        # Reschedule only while other work remains (see _controller_tick).
        if self.sim.pending() > 0:
            self.sim.schedule_after(delay, self._snapshot_tick)

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------

    def load_signal(self) -> LoadSignal:
        """Sample the pressure signal the controller decides on."""
        return LoadSignal(
            transport_backlog=self.consumer.sample_backlog(),
            queued_events=(
                self.firehose.in_flight
                + self.fanout.in_flight
                + self.push.in_flight
            ),
            pending_events=self.consumer.pending_events,
            pending_candidates=self.coalescer.pending_candidates,
            recent_p99=self.breakdown.recent_p99(),
        )

    def _controller_tick(self) -> None:
        assert self.controller is not None
        self.controller.tick(self.sim.clock.now(), self.load_signal())
        # Reschedule only while other work remains, or the tick itself
        # would keep the heap non-empty and the drain would never finish.
        if self.sim.pending() > 0:
            self.sim.schedule_after(
                self.controller.config.interval, self._controller_tick
            )
