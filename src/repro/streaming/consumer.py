"""The detection consumer: broker-side processing between queue stages.

Consumes edge events off the transport queue, runs the cluster's fan-out /
detection / gather (measuring its *real* wall-clock cost), and publishes
the resulting candidate batch to the downstream push queue after an
equivalent amount of *virtual* time.  This is the trick that lets the
end-to-end simulation honestly combine simulated queue seconds with
measured detection milliseconds.

With ``batch_size > 1`` the consumer micro-batches: it drains up to
``batch_size`` events — or whatever has accumulated after ``max_wait``
virtual seconds — into one columnar :class:`~repro.core.batch.EventBatch`
and invokes the cluster once per batch.  The time an event spends waiting
for its batch to fill is attributed to a dedicated ``path:batching``
latency stage downstream, so the throughput-for-latency trade stays
visible in the breakdown.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.cluster.cluster import Cluster
from repro.core.batch import EventBatch
from repro.core.events import EdgeEvent
from repro.core.recommendation import Recommendation, RecommendationBatch
from repro.sim.des import DiscreteEventSimulator
from repro.sim.metrics import LatencyBreakdown
from repro.streaming.queue import MessageQueue
from repro.util.validation import require, require_non_negative

if TYPE_CHECKING:  # avoid an ops import at runtime for this optional hook
    from repro.ops.admission import AdmissionController


@dataclass(frozen=True)
class CandidateBatch:
    """The candidates one edge event produced, plus its processing costs.

    Carrying the measured detection time, the virtual RPC latency, and the
    micro-batching wait lets the delivery end decompose each notification's
    end-to-end latency exactly (total = queue hops + batching + detection
    + rpc).

    ``recommendations`` is a boxed tuple on the per-event path and a
    columnar :class:`~repro.core.recommendation.RecommendationBatch` on the
    micro-batched path — the delivery end feeds the latter straight into
    ``offer_batch`` so candidates stay unboxed across the push queue.
    """

    origin_event: EdgeEvent
    recommendations: tuple[Recommendation, ...] | RecommendationBatch
    detection_seconds: float = 0.0
    rpc_seconds: float = 0.0
    #: Virtual seconds the origin event waited for its micro-batch to flush.
    batching_seconds: float = 0.0
    #: True when produced by a micro-batched consumer; lets downstream
    #: accounting record a (possibly zero) path:batching sample for every
    #: batched recommendation without inventing the stage in per-event mode.
    micro_batched: bool = False


class DetectionConsumer:
    """Edge events in, candidate batches out, detection time accounted.

    An optional admission controller gates the broker: when a burst
    exceeds the configured ingest budget, excess events are shed (and
    counted) instead of building unbounded queue backlog — the defensive
    posture behind the paper's fixed O(10^4)/s design target.

    ``batch_size == 1`` (the default) preserves the original per-event
    behavior bit for bit; larger sizes enable micro-batching with a
    ``max_wait`` flush timer so a trickling stream is never stalled
    indefinitely.
    """

    def __init__(
        self,
        sim: DiscreteEventSimulator,
        cluster: Cluster,
        output: MessageQueue[CandidateBatch],
        breakdown: LatencyBreakdown,
        admission: "AdmissionController | None" = None,
        batch_size: int = 1,
        max_wait: float = 0.05,
    ) -> None:
        require(batch_size >= 1, f"batch_size must be >= 1, got {batch_size}")
        require_non_negative(max_wait, "max_wait")
        self._sim = sim
        self._cluster = cluster
        self._output = output
        self._breakdown = breakdown
        self._admission = admission
        self._batch_size = batch_size
        self._max_wait = max_wait
        #: Pending (event, delivered_at) pairs awaiting a flush.
        self._buffer: list[tuple[EdgeEvent, float]] = []
        #: Monotone flush counter; guards the max_wait timer against firing
        #: after its buffer was already flushed by the size trigger.
        self._flush_epoch = 0
        self.events_consumed = 0
        self.events_shed = 0
        self.candidates_produced = 0

    def __call__(
        self, event: EdgeEvent, published_at: float, delivered_at: float
    ) -> None:
        """Queue-subscriber entry point."""
        if self._admission is not None and not self._admission.admit(delivered_at):
            self.events_shed += 1
            return
        if self._batch_size > 1:
            self._buffer.append((event, delivered_at))
            if len(self._buffer) >= self._batch_size:
                self._flush(delivered_at)
            elif len(self._buffer) == 1:
                epoch = self._flush_epoch
                self._sim.schedule_after(
                    self._max_wait, lambda: self._flush_if_pending(epoch)
                )
            return

        started = time.perf_counter()
        recommendations, rpc_latency = self._cluster.broker.process_event(
            event, now=delivered_at
        )
        detection_seconds = time.perf_counter() - started

        self.events_consumed += 1
        self.candidates_produced += len(recommendations)
        self._breakdown.record("detection", detection_seconds)
        if rpc_latency:
            self._breakdown.record("rpc", rpc_latency)

        if not recommendations:
            return
        batch = CandidateBatch(
            event,
            tuple(recommendations),
            detection_seconds=detection_seconds,
            rpc_seconds=rpc_latency,
        )
        # The broker hands the batch to the push queue only after the
        # detection work (and slowest partition ack) completes, so both
        # contribute their measured/virtual time to the end-to-end path.
        self._sim.schedule_after(
            detection_seconds + rpc_latency,
            lambda: self._output.publish(batch),
        )

    # ------------------------------------------------------------------
    # Micro-batching
    # ------------------------------------------------------------------

    @property
    def pending_events(self) -> int:
        """Events buffered and not yet flushed to the cluster."""
        return len(self._buffer)

    def _flush_if_pending(self, epoch: int) -> None:
        """max_wait timer callback; a stale epoch means already flushed."""
        if epoch == self._flush_epoch and self._buffer:
            self._flush(self._sim.clock.now())

    def _flush(self, flushed_at: float) -> None:
        """Run the buffered micro-batch through the cluster, once."""
        buffered, self._buffer = self._buffer, []
        self._flush_epoch += 1
        batch = EventBatch.from_events([event for event, _ in buffered])
        started = time.perf_counter()
        grouped, rpc_latency = self._cluster.broker.process_batch(
            batch, now=flushed_at
        )
        detection_seconds = time.perf_counter() - started

        self.events_consumed += len(buffered)
        self._breakdown.record("detection", detection_seconds)
        if rpc_latency:
            self._breakdown.record("rpc", rpc_latency)

        for (event, delivered_at), recommendations in zip(buffered, grouped):
            batching_seconds = flushed_at - delivered_at
            self._breakdown.record("batching", batching_seconds)
            self.candidates_produced += len(recommendations)
            if not recommendations:
                continue
            candidate_batch = CandidateBatch(
                event,
                recommendations,
                detection_seconds=detection_seconds,
                rpc_seconds=rpc_latency,
                batching_seconds=batching_seconds,
                micro_batched=True,
            )
            # Every event in the micro-batch waits for the whole batch's
            # detection and the shared fan-out ack before its candidates
            # reach the push queue — batching trades latency for
            # throughput and the accounting keeps that honest.
            self._sim.schedule_after(
                detection_seconds + rpc_latency,
                lambda b=candidate_batch: self._output.publish(b),
            )
