"""The detection consumer: broker-side processing between queue stages.

Consumes edge events off the transport queue, runs the cluster's fan-out /
detection / gather (measuring its *real* wall-clock cost), and publishes
the resulting candidate batch to the downstream push queue after an
equivalent amount of *virtual* time.  This is the trick that lets the
end-to-end simulation honestly combine simulated queue seconds with
measured detection milliseconds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.cluster.cluster import Cluster
from repro.core.events import EdgeEvent
from repro.core.recommendation import Recommendation
from repro.sim.des import DiscreteEventSimulator
from repro.sim.metrics import LatencyBreakdown
from repro.streaming.queue import MessageQueue

if TYPE_CHECKING:  # avoid an ops import at runtime for this optional hook
    from repro.ops.admission import AdmissionController


@dataclass(frozen=True)
class CandidateBatch:
    """The candidates one edge event produced, plus its processing costs.

    Carrying the measured detection time and the virtual RPC latency lets
    the delivery end decompose each notification's end-to-end latency
    exactly (total = queue hops + detection + rpc).
    """

    origin_event: EdgeEvent
    recommendations: tuple[Recommendation, ...]
    detection_seconds: float = 0.0
    rpc_seconds: float = 0.0


class DetectionConsumer:
    """Edge events in, candidate batches out, detection time accounted.

    An optional admission controller gates the broker: when a burst
    exceeds the configured ingest budget, excess events are shed (and
    counted) instead of building unbounded queue backlog — the defensive
    posture behind the paper's fixed O(10^4)/s design target.
    """

    def __init__(
        self,
        sim: DiscreteEventSimulator,
        cluster: Cluster,
        output: MessageQueue[CandidateBatch],
        breakdown: LatencyBreakdown,
        admission: "AdmissionController | None" = None,
    ) -> None:
        self._sim = sim
        self._cluster = cluster
        self._output = output
        self._breakdown = breakdown
        self._admission = admission
        self.events_consumed = 0
        self.events_shed = 0
        self.candidates_produced = 0

    def __call__(
        self, event: EdgeEvent, published_at: float, delivered_at: float
    ) -> None:
        """Queue-subscriber entry point."""
        if self._admission is not None and not self._admission.admit(delivered_at):
            self.events_shed += 1
            return
        started = time.perf_counter()
        recommendations, rpc_latency = self._cluster.broker.process_event(
            event, now=delivered_at
        )
        detection_seconds = time.perf_counter() - started

        self.events_consumed += 1
        self.candidates_produced += len(recommendations)
        self._breakdown.record("detection", detection_seconds)
        if rpc_latency:
            self._breakdown.record("rpc", rpc_latency)

        if not recommendations:
            return
        batch = CandidateBatch(
            event,
            tuple(recommendations),
            detection_seconds=detection_seconds,
            rpc_seconds=rpc_latency,
        )
        # The broker hands the batch to the push queue only after the
        # detection work (and slowest partition ack) completes, so both
        # contribute their measured/virtual time to the end-to-end path.
        self._sim.schedule_after(
            detection_seconds + rpc_latency,
            lambda: self._output.publish(batch),
        )
