"""The detection consumer: broker-side processing between queue stages.

Consumes edge events off the transport queue, runs the cluster's fan-out /
detection / gather (measuring its *real* wall-clock cost), and publishes
the resulting candidate batch to the downstream push queue after an
equivalent amount of *virtual* time.  This is the trick that lets the
end-to-end simulation honestly combine simulated queue seconds with
measured detection milliseconds.

With ``batch_size > 1`` the consumer micro-batches: it drains up to
``batch_size`` events — or whatever has accumulated after ``max_wait``
virtual seconds — into one columnar :class:`~repro.core.batch.EventBatch`
and invokes the cluster once per batch.  The time an event spends waiting
for its batch to fill is attributed to a dedicated ``path:batching``
latency stage downstream, so the throughput-for-latency trade stays
visible in the breakdown.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.cluster.cluster import Cluster
from repro.core.batch import EventBatch
from repro.core.events import EdgeEvent
from repro.core.recommendation import Recommendation, RecommendationBatch
from repro.delivery.notifier import PushNotification
from repro.delivery.pipeline import DeliveryPipeline
from repro.sim.des import DiscreteEventSimulator
from repro.sim.metrics import LatencyBreakdown
from repro.streaming.queue import MessageQueue
from repro.util.validation import require, require_non_negative

if TYPE_CHECKING:  # avoid ops/scoring imports at runtime for these hooks
    from repro.delivery.scoring import TopKPerUserBuffer
    from repro.ops.admission import AdmissionController
    from repro.serving.cache import ServingCache


@dataclass(frozen=True)
class CandidateBatch:
    """The candidates one edge event produced, plus its processing costs.

    Carrying the measured detection time, the virtual RPC latency, and the
    micro-batching wait lets the delivery end decompose each notification's
    end-to-end latency exactly (total = queue hops + batching + detection
    + rpc).

    ``recommendations`` is a boxed tuple on the per-event path and a
    columnar :class:`~repro.core.recommendation.RecommendationBatch` on the
    micro-batched path — the delivery end feeds the latter straight into
    ``offer_batch`` so candidates stay unboxed across the push queue.
    """

    origin_event: EdgeEvent
    recommendations: tuple[Recommendation, ...] | RecommendationBatch
    detection_seconds: float = 0.0
    rpc_seconds: float = 0.0
    #: Virtual seconds the origin event waited for its micro-batch to flush.
    batching_seconds: float = 0.0
    #: True when produced by a micro-batched consumer; lets downstream
    #: accounting record a (possibly zero) path:batching sample for every
    #: batched recommendation without inventing the stage in per-event mode.
    micro_batched: bool = False


class DetectionConsumer:
    """Edge events in, candidate batches out, detection time accounted.

    An optional admission controller gates the broker: when a burst
    exceeds the configured ingest budget, excess events are shed (and
    counted) instead of building unbounded queue backlog — the defensive
    posture behind the paper's fixed O(10^4)/s design target.

    ``batch_size == 1`` (the default) preserves the original per-event
    behavior bit for bit; larger sizes enable micro-batching with a
    ``max_wait`` flush timer so a trickling stream is never stalled
    indefinitely.
    """

    def __init__(
        self,
        sim: DiscreteEventSimulator,
        cluster: Cluster,
        output: MessageQueue[CandidateBatch],
        breakdown: LatencyBreakdown,
        admission: "AdmissionController | None" = None,
        batch_size: int = 1,
        max_wait: float = 0.05,
    ) -> None:
        require(batch_size >= 1, f"batch_size must be >= 1, got {batch_size}")
        require_non_negative(max_wait, "max_wait")
        self._sim = sim
        self._cluster = cluster
        self._output = output
        self._breakdown = breakdown
        self._admission = admission
        self._batch_size = batch_size
        self._max_wait = max_wait
        #: Pending (event, delivered_at) pairs awaiting a flush.
        self._buffer: list[tuple[EdgeEvent, float]] = []
        #: Monotone flush counter; guards the max_wait timer against firing
        #: after its buffer was already flushed by the size trigger.
        self._flush_epoch = 0
        #: Durability tap: called ``(batch, flushed_at)`` with every event
        #: batch immediately *before* it enters the cluster, so the WAL
        #: prefix is exactly the set of ingested batches (the per-event
        #: path logs one-event batches; replay runs them through the
        #: equivalent batched ingest).
        self.wal_tap = None
        #: Candidate batches detected but still in flight to the push
        #: queue (the virtual detection+rpc delay) — part of the
        #: topology's quiescence check for snapshots.
        self._inflight_publishes = 0
        self.events_consumed = 0
        self.events_shed = 0
        self.candidates_produced = 0
        #: Detection round-trips issued to the cluster (one per event on
        #: the per-event path, one per flush when micro-batching) — the
        #: deterministic cost axis of the overload frontier bench.
        self.cluster_calls = 0
        #: Last transport backlog observed (per-event when admission is
        #: configured, otherwise whenever :meth:`sample_backlog` runs).
        self.last_backlog = 0

    @property
    def batch_size(self) -> int:
        """Current micro-batch size (live-tunable via :meth:`configure`)."""
        return self._batch_size

    @property
    def max_wait(self) -> float:
        """Current flush deadline in virtual seconds."""
        return self._max_wait

    def configure(
        self, batch_size: int | None = None, max_wait: float | None = None
    ) -> None:
        """Retune the micro-batching knobs on a live consumer.

        The adaptive controller calls this between ticks.  A shrink that
        leaves the buffer at/over the new threshold flushes immediately,
        and a shortened ``max_wait`` re-arms the flush timer at the new
        deadline — so de-escalating to latency mode never strands
        buffered events behind a stale long timer (the epoch guard makes
        the superseded timer harmless).
        """
        rearm = False
        if batch_size is not None:
            require(batch_size >= 1, f"batch_size must be >= 1, got {batch_size}")
            self._batch_size = batch_size
        if max_wait is not None:
            require_non_negative(max_wait, "max_wait")
            rearm = max_wait < self._max_wait
            self._max_wait = max_wait
        if self._buffer and len(self._buffer) >= self._batch_size:
            self._flush(self._sim.clock.now())
        elif self._buffer and rearm:
            epoch = self._flush_epoch
            self._sim.schedule_after(
                self._max_wait, lambda: self._flush_if_pending(epoch)
            )

    def sample_backlog(self) -> int:
        """Sample (and remember) the transport's real request backlog."""
        self.last_backlog = self._cluster.broker.transport.backlog()
        return self.last_backlog

    def __call__(
        self, event: EdgeEvent, published_at: float, delivered_at: float
    ) -> None:
        """Queue-subscriber entry point."""
        if self._admission is not None:
            # The transport's real request-queue depth (0 on synchronous
            # transports) lets a backlog-gated controller shed on what the
            # partition fleet actually failed to drain, not just a model.
            # Sampled uniformly on every transport so admission, the
            # monitor, and the adaptive controller all see one signal.
            backlog = self.sample_backlog()
            if not self._admission.admit(delivered_at, backlog=backlog):
                self.events_shed += 1
                return
        if self._batch_size > 1:
            self._buffer.append((event, delivered_at))
            if len(self._buffer) >= self._batch_size:
                self._flush(delivered_at)
            elif len(self._buffer) == 1:
                epoch = self._flush_epoch
                self._sim.schedule_after(
                    self._max_wait, lambda: self._flush_if_pending(epoch)
                )
            return

        if self.wal_tap is not None:
            self.wal_tap(EventBatch.from_events([event]), delivered_at)
        started = time.perf_counter()
        recommendations, rpc_latency = self._cluster.broker.process_event(
            event, now=delivered_at
        )
        detection_seconds = time.perf_counter() - started

        self.cluster_calls += 1
        self.events_consumed += 1
        self.candidates_produced += len(recommendations)
        self._breakdown.record("detection", detection_seconds)
        if rpc_latency:
            self._breakdown.record("rpc", rpc_latency)

        if not recommendations:
            return
        batch = CandidateBatch(
            event,
            tuple(recommendations),
            detection_seconds=detection_seconds,
            rpc_seconds=rpc_latency,
        )
        # The broker hands the batch to the push queue only after the
        # detection work (and slowest partition ack) completes, so both
        # contribute their measured/virtual time to the end-to-end path.
        self._inflight_publishes += 1
        self._sim.schedule_after(
            detection_seconds + rpc_latency,
            lambda: self._publish(batch),
        )

    # ------------------------------------------------------------------
    # Micro-batching
    # ------------------------------------------------------------------

    @property
    def pending_events(self) -> int:
        """Events buffered and not yet flushed to the cluster."""
        return len(self._buffer)

    @property
    def inflight_publishes(self) -> int:
        """Candidate batches scheduled but not yet on the push queue."""
        return self._inflight_publishes

    def _publish(self, batch: CandidateBatch) -> None:
        """Detection-delay timer callback: hand off to the push queue."""
        self._inflight_publishes -= 1
        self._output.publish(batch)

    def _flush_if_pending(self, epoch: int) -> None:
        """max_wait timer callback; a stale epoch means already flushed."""
        if epoch == self._flush_epoch and self._buffer:
            self._flush(self._sim.clock.now())

    def _flush(self, flushed_at: float) -> None:
        """Run the buffered micro-batch through the cluster, once."""
        buffered, self._buffer = self._buffer, []
        self._flush_epoch += 1
        batch = EventBatch.from_events([event for event, _ in buffered])
        if self.wal_tap is not None:
            self.wal_tap(batch, flushed_at)
        started = time.perf_counter()
        grouped, rpc_latency = self._cluster.broker.process_batch(
            batch, now=flushed_at
        )
        detection_seconds = time.perf_counter() - started

        self.cluster_calls += 1
        self.events_consumed += len(buffered)
        self._breakdown.record("detection", detection_seconds)
        if rpc_latency:
            self._breakdown.record("rpc", rpc_latency)

        for (event, delivered_at), recommendations in zip(buffered, grouped):
            batching_seconds = flushed_at - delivered_at
            self._breakdown.record("batching", batching_seconds)
            self.candidates_produced += len(recommendations)
            if not recommendations:
                continue
            candidate_batch = CandidateBatch(
                event,
                recommendations,
                detection_seconds=detection_seconds,
                rpc_seconds=rpc_latency,
                batching_seconds=batching_seconds,
                micro_batched=True,
            )
            # Every event in the micro-batch waits for the whole batch's
            # detection and the shared fan-out ack before its candidates
            # reach the push queue — batching trades latency for
            # throughput and the accounting keeps that honest.
            self._inflight_publishes += 1
            self._sim.schedule_after(
                detection_seconds + rpc_latency,
                lambda b=candidate_batch: self._publish(b),
            )


class DeliveryCoalescer:
    """Push-queue consumer: merges candidate batches across a short window.

    The detection side amortizes per-event overhead by micro-batching;
    the delivery side deserves the same treatment.  Without coalescing,
    every origin event's candidates cross the funnel as their own
    ``offer_batch`` call — one funnel dispatch, one set of stage masks,
    one numpy fixed cost per event.  The coalescer buffers arriving
    :class:`CandidateBatch`es and flushes them as one merged
    :class:`~repro.core.recommendation.RecommendationBatch` when either

    * ``batch_size`` raw candidates have accumulated, or
    * ``max_wait`` virtual seconds have passed since the first buffered
      batch (a trickling stream is never stalled indefinitely),

    which is where a production push-queue consumer would sit.  Time a
    candidate spends waiting for its delivery batch is attributed to a
    dedicated ``path:delivery-batching`` latency stage, so the
    throughput-for-latency trade stays visible in the breakdown (the
    delivery-side mirror of the detection consumer's ``path:batching``).

    ``batch_size == 1`` (the default) preserves the uncoalesced behavior
    exactly: every batch is dispatched inline on arrival and the
    ``path:delivery-batching`` stage never materializes.

    Note the semantic consequence of coalescing: the funnel sees the
    merged batch at the *flush* clock, so dedup windows, waking-hours
    checks, and fatigue budgets are evaluated up to ``max_wait`` seconds
    later than they would have been uncoalesced — the same trade the
    detection consumer makes with event timestamps.

    A *ranker* (:class:`~repro.delivery.scoring.TopKPerUserBuffer`) turns
    this into the ranked delivery configuration: candidates accumulate in
    the ranking buffer instead of hitting the funnel directly, and each
    coalescing-window flush releases only every user's top-k (by
    corroboration x freshness) into the funnel — the window doubles as
    the ranking window.  The funnel then sees the already-ranked
    survivors, so its "raw" count measures post-ranking volume.

    A *serving* cache (:class:`~repro.serving.cache.ServingCache` or its
    sharded wrapper) turns the flush into the pull tier's write path: the
    exact rows entering the funnel — the ranked window's released winners,
    or the merged raw batch when unranked — also merge into the per-user
    materialized top-k that point queries read.  The tap is downstream
    accounting only; it never changes what the funnel sees.
    """

    def __init__(
        self,
        sim: DiscreteEventSimulator,
        delivery: DeliveryPipeline,
        breakdown: LatencyBreakdown,
        notifications: list[PushNotification],
        batch_size: int = 1,
        max_wait: float = 0.05,
        ranker: "TopKPerUserBuffer | None" = None,
        serving: "ServingCache | None" = None,
    ) -> None:
        require(batch_size >= 1, f"batch_size must be >= 1, got {batch_size}")
        require_non_negative(max_wait, "max_wait")
        self._sim = sim
        self._delivery = delivery
        self._breakdown = breakdown
        self._notifications = notifications
        self._batch_size = batch_size
        self._max_wait = max_wait
        self._ranker = ranker
        self._serving = serving
        #: Pending (batch, delivered_at) pairs awaiting a flush.
        self._buffer: list[tuple[CandidateBatch, float]] = []
        self._pending_candidates = 0
        #: Monotone flush counter guarding the max_wait timer (see
        #: DetectionConsumer._flush_epoch).
        self._flush_epoch = 0
        self.batches_coalesced = 0
        self.flushes = 0

    @property
    def batch_size(self) -> int:
        """Current coalescing threshold (live-tunable via :meth:`configure`)."""
        return self._batch_size

    @property
    def max_wait(self) -> float:
        """Current coalescing window in virtual seconds."""
        return self._max_wait

    def configure(
        self, batch_size: int | None = None, max_wait: float | None = None
    ) -> None:
        """Retune the coalescing window on a live coalescer.

        Mirror of :meth:`DetectionConsumer.configure`: a shrink that
        leaves the buffer at/over the new threshold flushes immediately,
        a shortened ``max_wait`` re-arms the flush timer, and stale
        timers are defused by the epoch guard.
        """
        rearm = False
        if batch_size is not None:
            require(batch_size >= 1, f"batch_size must be >= 1, got {batch_size}")
            self._batch_size = batch_size
        if max_wait is not None:
            require_non_negative(max_wait, "max_wait")
            rearm = max_wait < self._max_wait
            self._max_wait = max_wait
        if self._buffer and self._pending_candidates >= self._batch_size:
            self._flush(self._sim.clock.now())
        elif self._buffer and rearm:
            epoch = self._flush_epoch
            self._sim.schedule_after(
                self._max_wait, lambda: self._flush_if_pending(epoch)
            )

    def __call__(
        self, batch: CandidateBatch, published_at: float, delivered_at: float
    ) -> None:
        """Queue-subscriber entry point."""
        self._breakdown.record("queue:push", delivered_at - published_at)
        if self._batch_size <= 1:
            self._account(batch, delivered_at, delivered_at, coalesced=False)
            self._offer_inline(batch, delivered_at)
            return
        self._buffer.append((batch, delivered_at))
        self._pending_candidates += len(batch.recommendations)
        if self._pending_candidates >= self._batch_size:
            self._flush(delivered_at)
        elif len(self._buffer) == 1:
            epoch = self._flush_epoch
            self._sim.schedule_after(
                self._max_wait, lambda: self._flush_if_pending(epoch)
            )

    # ------------------------------------------------------------------
    # Buffering
    # ------------------------------------------------------------------

    @property
    def pending_batches(self) -> int:
        """Candidate batches buffered and not yet flushed to the funnel."""
        return len(self._buffer)

    @property
    def pending_candidates(self) -> int:
        """Raw candidates buffered and not yet flushed to the funnel."""
        return self._pending_candidates

    def _flush_if_pending(self, epoch: int) -> None:
        """max_wait timer callback; a stale epoch means already flushed."""
        if epoch == self._flush_epoch and self._buffer:
            self._flush(self._sim.clock.now())

    def _flush(self, flushed_at: float) -> None:
        """Run the buffered batches through the funnel, as one batch."""
        buffered, self._buffer = self._buffer, []
        self._pending_candidates = 0
        self._flush_epoch += 1
        self.flushes += 1
        self.batches_coalesced += len(buffered)
        parts: list[RecommendationBatch] = []
        for batch, delivered_at in buffered:
            self._account(batch, delivered_at, flushed_at, coalesced=True)
            recommendations = batch.recommendations
            if isinstance(recommendations, RecommendationBatch):
                parts.append(recommendations)
            else:
                # Per-event consumers publish boxed tuples; re-column them
                # so the merged batch crosses the funnel columnar.
                parts.append(
                    RecommendationBatch.from_recommendations(recommendations)
                )
        merged = RecommendationBatch.concat_all(parts)
        if self._ranker is not None:
            # Ranked configuration: the coalescing window is the ranking
            # window — buffer columnar, release each user's top-k, and
            # only those winners enter the funnel.
            self._ranker.offer_batch(merged)
            released = self._ranker.flush(flushed_at)
            if self._serving is not None:
                self._serving.ingest_released(released, flushed_at)
            self._notifications.extend(
                self._delivery.offer_all(released, flushed_at)
            )
            return
        if self._serving is not None:
            self._serving.ingest_batch(merged, flushed_at)
        self._notifications.extend(
            self._delivery.offer_batch(merged, flushed_at)
        )

    # ------------------------------------------------------------------
    # Accounting + dispatch
    # ------------------------------------------------------------------

    def _account(
        self,
        batch: CandidateBatch,
        delivered_at: float,
        flushed_at: float,
        coalesced: bool,
    ) -> None:
        """Record the per-recommendation latency decomposition.

        ``total = queue hops + batching + detection/rpc [+ delivery
        batching]`` — measured to the moment the candidates actually
        enter the funnel, so coalescing honestly shows up in the
        end-to-end percentiles.
        """
        total = flushed_at - batch.origin_event.created_at
        processing = batch.detection_seconds + batch.rpc_seconds
        batching = batch.batching_seconds
        queue_path = (
            delivered_at - batch.origin_event.created_at - processing - batching
        )
        wait = flushed_at - delivered_at
        breakdown = self._breakdown
        for _ in range(len(batch.recommendations)):
            breakdown.record_total(total)
            breakdown.record("path:queue", queue_path)
            breakdown.record("path:processing", processing)
            if batch.micro_batched:
                # Zero-wait samples (the size-trigger's final event) count
                # too, or the stage's percentiles would overstate the
                # typical batching delay.
                breakdown.record("path:batching", batching)
            if coalesced:
                breakdown.record("path:delivery-batching", wait)

    def _offer_inline(self, batch: CandidateBatch, now: float) -> None:
        """Uncoalesced dispatch: the exact pre-coalescer behavior.

        With a ranker configured, each arriving batch is ranked and
        flushed immediately (a degenerate one-batch ranking window): the
        in-batch (recipient, candidate) dedup and per-user top-k still
        apply, there is just no cross-batch accumulation.
        """
        recommendations = batch.recommendations
        if self._ranker is not None:
            if isinstance(recommendations, RecommendationBatch):
                self._ranker.offer_batch(recommendations)
            else:
                for rec in recommendations:
                    self._ranker.offer(rec)
            released = self._ranker.flush(now)
            if self._serving is not None:
                self._serving.ingest_released(released, now)
            self._notifications.extend(self._delivery.offer_all(released, now))
            return
        if self._serving is not None:
            if isinstance(recommendations, RecommendationBatch):
                self._serving.ingest_batch(recommendations, now)
            else:
                self._serving.ingest_released(list(recommendations), now)
        if isinstance(recommendations, RecommendationBatch):
            # Columnar candidates stay columnar through the funnel; only
            # the final survivors are boxed (inside offer_batch).
            self._notifications.extend(
                self._delivery.offer_batch(recommendations, now)
            )
        else:
            for rec in recommendations:
                notification = self._delivery.offer(rec, now)
                if notification is not None:
                    self._notifications.append(notification)
