"""Message queues and the end-to-end streaming topology.

"We assume the existence of a data source (e.g., message queue) that
provides a stream of graph edges as they are created in real-time." — and,
on the output side, more queues carry detected recommendations to the push
delivery system.  The paper's end-to-end latency (7 s median / 15 s p99) is
dominated by these queues.

:class:`~repro.streaming.queue.MessageQueue` is a pub/sub queue over the
discrete-event simulator with a pluggable propagation-delay model;
:class:`~repro.streaming.pipeline.StreamingTopology` assembles the full
production path::

    edge created -> firehose queue -> fan-out queue -> broker + partitions
                 -> push queue -> delivery funnel -> notification

and reports the per-stage latency breakdown that benchmark E4 prints.
"""

from repro.streaming.queue import MessageQueue, QueueStats
from repro.streaming.source import ReplaySource
from repro.streaming.consumer import DeliveryCoalescer, DetectionConsumer
from repro.streaming.pipeline import (
    StreamingTopology,
    TopologyKnobs,
    TopologyReport,
)

__all__ = [
    "MessageQueue",
    "QueueStats",
    "ReplaySource",
    "DeliveryCoalescer",
    "DetectionConsumer",
    "StreamingTopology",
    "TopologyKnobs",
    "TopologyReport",
]
