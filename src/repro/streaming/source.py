"""Replay an edge-event stream into the topology at its own timestamps."""

from __future__ import annotations

from repro.core.events import EdgeEvent
from repro.sim.des import DiscreteEventSimulator
from repro.streaming.queue import MessageQueue


class ReplaySource:
    """Publishes each event into a queue at the event's creation time."""

    def __init__(
        self,
        sim: DiscreteEventSimulator,
        output: MessageQueue[EdgeEvent],
    ) -> None:
        self._sim = sim
        self._output = output
        self.events_scheduled = 0

    def load(self, events: list[EdgeEvent]) -> None:
        """Schedule every event's publication at its ``created_at``.

        Must be called before the simulation advances past the earliest
        event timestamp.
        """
        for event in events:
            self._sim.schedule_at(
                event.created_at,
                lambda event=event: self._output.publish(event),
            )
            self.events_scheduled += 1
