"""A pub/sub message queue over virtual time.

Each published item is delivered to every subscriber after a propagation
delay sampled from the queue's delay model.  Ordering is *not* guaranteed
across items (real queues reorder under load — and the dynamic index is
explicitly tolerant of that), but every accepted item is delivered exactly
once per subscriber.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generic, TypeVar

from repro.sim.des import DiscreteEventSimulator
from repro.sim.latency import DelayModel
from repro.util.stats import PercentileTracker

T = TypeVar("T")

#: Subscriber signature: (item, published_at, delivered_at).
Subscriber = Callable[[T, float, float], None]


@dataclass
class QueueStats:
    """Per-queue accounting."""

    published: int = 0
    delivered: int = 0
    delay: PercentileTracker = field(default_factory=PercentileTracker)


class MessageQueue(Generic[T]):
    """One queue stage with a sampled propagation delay per item."""

    def __init__(
        self,
        sim: DiscreteEventSimulator,
        name: str,
        delay_model: DelayModel | None = None,
    ) -> None:
        """Create a queue bound to a simulator.

        Args:
            sim: the discrete-event simulator driving virtual time.
            name: stage label, e.g. ``"firehose"``.
            delay_model: per-item propagation delay sampler (zero delay
                when omitted).
        """
        self._sim = sim
        self.name = name
        self._delay_model = delay_model
        self._subscribers: list[Subscriber[T]] = []
        self.stats = QueueStats()

    def subscribe(self, subscriber: Subscriber[T]) -> None:
        """Register a delivery callback."""
        self._subscribers.append(subscriber)

    @property
    def in_flight(self) -> int:
        """Items published but not yet delivered.

        With load-independent hop delays this tracks the arrival rate
        (~``rate x median delay`` items mid-hop), so a burst shows up
        here immediately — the queue-stage component of the adaptive
        controller's pressure signal.
        """
        return self.stats.published - self.stats.delivered

    def publish(self, item: T) -> float:
        """Enqueue *item* now; returns the sampled propagation delay."""
        published_at = self._sim.clock.now()
        delay = self._delay_model() if self._delay_model else 0.0
        self.stats.published += 1
        self.stats.delay.add(delay)

        def deliver() -> None:
            delivered_at = self._sim.clock.now()
            self.stats.delivered += 1
            for subscriber in self._subscribers:
                subscriber(item, published_at, delivered_at)

        self._sim.schedule_after(delay, deliver)
        return delay
